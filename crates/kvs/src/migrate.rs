//! Hot-set monitoring and migration (paper §8).
//!
//! "Applications which only use slice-aware memory management for the
//! 'hot' data due to their very large working set should employ
//! monitoring/migration techniques to deal with variability of hot
//! data." This module implements that loop for the KVS: count key
//! accesses per epoch, and at each epoch boundary swap newly-hot keys
//! into the store's slice-local hot slots (evicting keys that cooled
//! off). A swap exchanges both the index entries and the 64 B values,
//! all through timed machine operations, so migration cost is visible to
//! the experiment that decides whether it pays off.
//!
//! A [`HotMigrator`] is constructed *from* a [`KvStore`]
//! ([`HotMigrator::for_store`]): it reads the store's placement for the
//! hot-slot geometry and the store's live index for the current
//! residents, so it is correct against a freshly built store, an
//! already-migrated store, and every placement that declares a hot area
//! ([`crate::store::Placement::HotSliceAware`],
//! [`crate::store::Placement::StripedHot`]). Placements
//! without one are rejected with a typed [`MigrateError`] instead of
//! silently corrupting the index on the first swap. In the multi-queue
//! server one migrator exists per queue (core), each owning its key
//! class's hot area, driven at engine-epoch boundaries — see
//! [`crate::server`].

use crate::store::{KvStore, SwapError};
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;
use std::collections::{HashMap, HashSet};

/// What one epoch's migration did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// Keys moved into the hot area (same number moved out).
    pub migrated: usize,
    /// Cycles spent copying values and rewriting index entries.
    pub cycles: Cycles,
    /// Accesses in this epoch that found their key already resident in
    /// the hot area (counted at access time, before this migration).
    pub hot_hits: u64,
    /// Accesses observed in this epoch.
    pub accesses: u64,
}

/// Why a [`HotMigrator`] could not be built or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateError {
    /// The store's placement declares no hot area (for this core):
    /// there is nothing to migrate into, and swapping against an
    /// assumed layout would corrupt the index.
    NoHotArea {
        /// The serving core the migrator was requested for.
        core: usize,
        /// A rendering of the store's placement.
        placement: String,
    },
    /// A migration swap was rejected by the store.
    Swap(SwapError),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::NoHotArea { core, placement } => write!(
                f,
                "placement {placement} has no hot area for core {core}; \
                 migration needs HotSliceAware or StripedHot"
            ),
            MigrateError::Swap(e) => write!(f, "migration swap rejected: {e}"),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<SwapError> for MigrateError {
    fn from(e: SwapError) -> Self {
        MigrateError::Swap(e)
    }
}

/// Epoch-based hot-set tracker driving [`KvStore::swap_keys`].
#[derive(Debug)]
pub struct HotMigrator {
    /// Access counts within the current epoch.
    counts: HashMap<u32, u32>,
    /// Accesses per epoch.
    epoch_len: usize,
    /// Accesses seen in the current epoch.
    seen: usize,
    /// Hot accesses seen in the current epoch.
    epoch_hits: u64,
    /// The serving core whose hot area this migrator owns.
    core: usize,
    /// The hot slot numbers, in the store's hot-area order.
    slots: Vec<usize>,
    /// The key currently stored in each hot slot (parallel to `slots`).
    resident: Vec<u32>,
    /// Membership view of `resident` for O(1) hot checks.
    hot_set: HashSet<u32>,
}

impl HotMigrator {
    /// A migrator for `core`'s hot area of `store`, reading the store's
    /// *actual* placement geometry and live index layout (one untimed
    /// scan). Stores whose placement declares no hot area for `core`
    /// ([`crate::store::Placement::Normal`],
    /// [`crate::store::Placement::SliceAware`],
    /// [`crate::store::Placement::Striped`]) are rejected with
    /// [`MigrateError::NoHotArea`].
    ///
    /// # Panics
    ///
    /// Panics when `epoch_len == 0`.
    pub fn for_store(
        m: &Machine,
        store: &KvStore,
        core: usize,
        epoch_len: usize,
    ) -> Result<Self, MigrateError> {
        assert!(epoch_len > 0, "epoch must be positive");
        let slots = store
            .hot_slots(core)
            .ok_or_else(|| MigrateError::NoHotArea {
                core,
                placement: format!("{:?}", store.placement()),
            })?;
        let resident = store.residents(m, &slots);
        let hot_set = resident.iter().copied().collect();
        Ok(Self {
            counts: HashMap::new(),
            epoch_len,
            seen: 0,
            epoch_hits: 0,
            core,
            slots,
            resident,
            hot_set,
        })
    }

    /// Keys currently occupying the hot area, in hot-slot order.
    pub fn resident(&self) -> &[u32] {
        &self.resident
    }

    /// True when `key`'s value currently lives in a hot slot.
    pub fn is_hot(&self, key: u32) -> bool {
        self.hot_set.contains(&key)
    }

    /// Counts one access without driving migration; returns whether the
    /// key was hot at access time. The engine-driven server calls this
    /// from `on_packet` (shards cannot swap — index entries of
    /// different classes share cache lines) and runs
    /// [`HotMigrator::run_epoch`] at the merge when
    /// [`HotMigrator::epoch_due`] reports a boundary.
    pub fn note(&mut self, key: u32) -> bool {
        *self.counts.entry(key).or_insert(0) += 1;
        self.seen += 1;
        let hot = self.is_hot(key);
        self.epoch_hits += hot as u64;
        hot
    }

    /// True when a full epoch of accesses has been observed and
    /// [`HotMigrator::run_epoch`] should run.
    pub fn epoch_due(&self) -> bool {
        self.seen >= self.epoch_len
    }

    /// Performs this epoch's migration through timed
    /// [`KvStore::swap_keys`] calls on the migrator's core, resets the
    /// epoch counters, and reports what happened.
    pub fn run_epoch(
        &mut self,
        m: &mut Machine,
        store: &KvStore,
    ) -> Result<MigrationReport, MigrateError> {
        // This epoch's top keys in a *total* order — (count desc, key
        // asc) — so ties cannot depend on the counts map's iteration
        // order and serial/parallel runs stay bit-identical.
        let mut by_count: Vec<(u32, u32)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        by_count.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let want: Vec<u32> = by_count
            .iter()
            .take(self.slots.len())
            .map(|&(k, _)| k)
            .collect();
        let want_set: HashSet<u32> = want.iter().copied().collect();
        // Hot-slot occupants that cooled off, coldest first under the
        // same total order — (count asc, key asc); missing from the
        // counts map is coldest of all.
        let mut evictable: Vec<(usize, u32)> = self
            .resident
            .iter()
            .enumerate()
            .filter(|(_, k)| !want_set.contains(k))
            .map(|(i, &k)| (i, k))
            .collect();
        evictable.sort_unstable_by_key(|&(_, k)| (self.counts.get(&k).copied().unwrap_or(0), k));
        let mut migrated = 0;
        let mut cycles = 0;
        let mut evict_iter = evictable.into_iter();
        for key in want {
            if self.is_hot(key) {
                continue;
            }
            let Some((slot_idx, out_key)) = evict_iter.next() else {
                break;
            };
            cycles += store.swap_keys(m, self.core, key, out_key)?;
            self.hot_set.remove(&out_key);
            self.hot_set.insert(key);
            self.resident[slot_idx] = key;
            migrated += 1;
        }
        let report = MigrationReport {
            migrated,
            cycles,
            hot_hits: self.epoch_hits,
            accesses: self.seen as u64,
        };
        self.counts.clear();
        self.seen = 0;
        self.epoch_hits = 0;
        Ok(report)
    }

    /// Records one access; at epoch boundaries performs migration and
    /// returns the report. The convenience form of
    /// [`HotMigrator::note`] + [`HotMigrator::run_epoch`] for callers
    /// that own the whole machine (unit tests, single-threaded loops).
    pub fn record(
        &mut self,
        m: &mut Machine,
        store: &KvStore,
        key: u32,
    ) -> Result<Option<MigrationReport>, MigrateError> {
        self.note(key);
        if !self.epoch_due() {
            return Ok(None);
        }
        self.run_epoch(m, store).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Placement;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::MachineConfig;
    use slice_aware::alloc::SliceAllocator;

    fn machine() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20))
    }

    fn build(m: &mut Machine, n: usize, placement: Placement) -> KvStore {
        let region = m.mem_mut().alloc(64 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        KvStore::build(m, &mut alloc, n, placement).unwrap()
    }

    fn setup(n: usize, hot: usize) -> (Machine, KvStore) {
        let mut m = machine();
        let store = build(
            &mut m,
            n,
            Placement::HotSliceAware {
                slice: 0,
                hot_count: hot,
            },
        );
        (m, store)
    }

    #[test]
    fn migration_moves_hot_keys_into_the_slice() {
        let (mut m, store) = setup(4096, 16);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 1000).unwrap();
        // Hammer keys 2000..2016 (initially in the cold, contiguous area).
        for i in 0..1000u32 {
            let key = 2000 + (i % 16);
            mig.record(&mut m, &store, key).unwrap();
        }
        for key in 2000..2016 {
            assert!(mig.is_hot(key), "key {key} should have migrated");
            let pa = store.value_pa(&mut m, key);
            assert_eq!(m.slice_of(pa), 0, "migrated value must live in slice 0");
        }
    }

    #[test]
    fn migration_preserves_values() {
        let (mut m, store) = setup(1024, 8);
        // Give distinctive contents to a future-hot key and a current
        // occupant.
        store.set(&mut m, 0, 500, &[0xaa; 64]);
        store.set(&mut m, 0, 3, &[0xbb; 64]);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 100).unwrap();
        for _ in 0..100 {
            mig.record(&mut m, &store, 500).unwrap();
        }
        let mut out = [0u8; 64];
        store.get(&mut m, 0, 500, &mut out);
        assert_eq!(out, [0xaa; 64], "migrated value intact");
        store.get(&mut m, 0, 3, &mut out);
        assert_eq!(out, [0xbb; 64], "evicted value intact");
    }

    #[test]
    fn stable_hot_set_stops_migrating() {
        let (mut m, store) = setup(1024, 4);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 200).unwrap();
        let mut reports = Vec::new();
        for round in 0..3 {
            for i in 0..200u32 {
                let key = 700 + (i % 4);
                if let Some(r) = mig.record(&mut m, &store, key).unwrap() {
                    reports.push((round, r));
                }
            }
        }
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].1.migrated, 4, "first epoch migrates the set");
        assert_eq!(reports[1].1.migrated, 0, "steady state is free");
        assert_eq!(reports[2].1.migrated, 0);
        assert_eq!(reports[1].1.cycles, 0);
        // Epoch hot-hit accounting: epoch 1 saw only cold keys; once the
        // set is resident every access is a hot hit.
        assert_eq!(reports[0].1.hot_hits, 0);
        assert_eq!(reports[1].1.hot_hits, 200);
        assert_eq!(reports[1].1.accesses, 200);
    }

    #[test]
    fn migration_adapts_when_the_hot_set_shifts() {
        // §8's motivating case: "variability of hot data".
        let (mut m, store) = setup(4096, 8);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 400).unwrap();
        for i in 0..400u32 {
            mig.record(&mut m, &store, 1000 + (i % 8)).unwrap();
        }
        assert!(mig.is_hot(1000));
        for i in 0..400u32 {
            mig.record(&mut m, &store, 3000 + (i % 8)).unwrap();
        }
        assert!(mig.is_hot(3000), "new hot set migrated in");
        assert!(!mig.is_hot(1000), "old hot set migrated out");
        let pa = store.value_pa(&mut m, 3000);
        assert_eq!(m.slice_of(pa), 0);
    }

    #[test]
    fn migration_cost_is_accounted() {
        let (mut m, store) = setup(1024, 4);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 50).unwrap();
        let mut report = None;
        for i in 0..50u32 {
            report = mig
                .record(&mut m, &store, 900 + (i % 4))
                .unwrap()
                .or(report);
        }
        let r = report.expect("epoch boundary reached");
        assert_eq!(r.migrated, 4);
        // Each swap copies two 64 B values and rewrites two index entries.
        assert!(r.cycles > 0);
    }

    #[test]
    fn placements_without_a_hot_area_are_rejected() {
        let mut m = machine();
        for placement in [
            Placement::Normal,
            Placement::SliceAware { slice: 0 },
            Placement::Striped {
                slices: vec![0, 2, 4, 6],
            },
        ] {
            let store = build(&mut m, 512, placement.clone());
            let err = HotMigrator::for_store(&m, &store, 0, 100).unwrap_err();
            assert!(
                matches!(err, MigrateError::NoHotArea { core: 0, .. }),
                "{placement:?} must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn striped_hot_migrates_per_core_and_every_get_survives() {
        // The regression the for_store redesign exists for: a *striped*
        // store's resident layout is its key class, not (0..hot_count).
        // The old identity-assuming constructor would corrupt the index
        // on the first swap; for_store must migrate correctly and leave
        // every key's value reachable.
        let cores = 4;
        let n = 1024u32;
        let mut m = machine();
        let slices: Vec<usize> = (0..cores).map(|c| m.closest_slice(c)).collect();
        let store = build(
            &mut m,
            n as usize,
            Placement::StripedHot {
                slices: slices.clone(),
                hot_per_core: 8,
            },
        );
        // Every key gets a distinctive value derived from its id.
        let pattern = |k: u32| [k as u8 ^ (k >> 8) as u8; 64];
        for k in 0..n {
            store.set(&mut m, (k % 4) as usize, k, &pattern(k));
        }
        // Each core hammers a cold stretch of its own class.
        for (core, &home_slice) in slices.iter().enumerate() {
            let mut mig = HotMigrator::for_store(&m, &store, core, 400).unwrap();
            assert_eq!(
                mig.resident(),
                store
                    .hot_slots(core)
                    .unwrap()
                    .iter()
                    .map(|&s| s as u32)
                    .collect::<Vec<_>>(),
                "fresh striped store: hot slots hold their own keys"
            );
            let mut migrated = 0;
            for i in 0..400u32 {
                let key = 512 + (core as u32) + 4 * (i % 8);
                if let Some(r) = mig.record(&mut m, &store, key).unwrap() {
                    migrated += r.migrated;
                }
            }
            assert_eq!(migrated, 8, "core {core} migrates its observed set");
            for j in 0..8u32 {
                let key = 512 + (core as u32) + 4 * j;
                assert!(mig.is_hot(key));
                let pa = store.value_pa(&mut m, key);
                assert_eq!(
                    m.slice_of(pa),
                    home_slice,
                    "core {core}'s hot key {key} must live in its slice"
                );
            }
        }
        // The index is still a permutation: every key returns its value.
        let mut out = [0u8; 64];
        for k in 0..n {
            store.get(&mut m, (k % 4) as usize, k, &mut out);
            assert_eq!(out, pattern(k), "key {k} corrupted by migration");
        }
    }

    #[test]
    fn for_store_reads_a_migrated_layout_not_identity() {
        // Second half of the regression: a *new* migrator built against
        // an already-migrated store must see the real residents. The old
        // constructor assumed identity and would have evicted key 900's
        // slot while believing key 0 lived there.
        let (mut m, store) = setup(1024, 4);
        let mut first = HotMigrator::for_store(&m, &store, 0, 50).unwrap();
        for i in 0..50u32 {
            first.record(&mut m, &store, 900 + (i % 4)).unwrap();
        }
        assert!(first.is_hot(900));
        drop(first);
        let second = HotMigrator::for_store(&m, &store, 0, 50).unwrap();
        assert_eq!(
            second.resident(),
            &[900, 901, 902, 903],
            "a fresh migrator must read the migrated layout"
        );
        assert!(second.is_hot(901));
        assert!(!second.is_hot(0), "identity assumption is gone");
    }

    #[test]
    fn tied_counts_break_by_key_order() {
        // Every candidate and every evictable occupant has the same
        // count: promotion must pick ascending keys, eviction must evict
        // ascending keys, regardless of hash-map iteration order.
        let (mut m, store) = setup(1024, 4);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 8).unwrap();
        for key in [500u32, 800, 600, 700, 100, 300, 200, 400] {
            mig.record(&mut m, &store, key).unwrap();
        }
        // Top 4 under (count desc, key asc) with all counts == 1:
        // 100, 200, 300, 400.
        assert_eq!(mig.resident(), &[100, 200, 300, 400]);
    }
}
