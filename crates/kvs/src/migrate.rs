//! Hot-set monitoring and migration (paper §8).
//!
//! "Applications which only use slice-aware memory management for the
//! 'hot' data due to their very large working set should employ
//! monitoring/migration techniques to deal with variability of hot
//! data." This module implements that loop for the KVS: count key
//! accesses per epoch, and at each epoch boundary swap newly-hot keys
//! into the store's slice-local hot slots (evicting keys that cooled
//! off). A swap exchanges both the index entries and the 64 B values,
//! all through timed machine operations, so migration cost is visible to
//! the experiment that decides whether it pays off.
//!
//! Two [`MigrationPolicy`]s drive the swap decision:
//!
//! * [`MigrationPolicy::Always`] promotes the whole observed top set
//!   every epoch — the original unconditional policy, kept as the
//!   baseline. EXPERIMENTS.md §F8b measures it losing 16-29 % TPS:
//!   most of its swaps move tail keys whose few future accesses can
//!   never repay the swap.
//! * [`MigrationPolicy::CostAware`] only executes a swap when its
//!   projected benefit exceeds its cost: `projected_accesses ×
//!   slice_distance_saving > swap_cost`, with both constants read from
//!   the machine model ([`CostModel::measure`]) and the swap cost
//!   refined from the realized cycles of every executed batch. Swaps
//!   are batched at epoch merges (at most [`CostModel::max_batch`] per
//!   merge; the approved remainder is *deferred* to the next merge),
//!   the epoch length self-tunes on the realized benefit/cost ratio,
//!   and a hysteresis back-off puts the controller *dormant* after
//!   [`CostModel::backoff_epochs`] swap-free epochs — waking only when
//!   a candidate clears [`CostModel::wake_mult`]× the swap cost, so a
//!   uniform workload performs zero swaps. See DESIGN.md §3g.
//!
//! A [`HotMigrator`] is constructed *from* a [`KvStore`]
//! ([`HotMigrator::for_store`]): it reads the store's placement for the
//! hot-slot geometry and the store's live index for the current
//! residents, so it is correct against a freshly built store, an
//! already-migrated store, and every placement that declares a hot area
//! ([`crate::store::Placement::HotSliceAware`],
//! [`crate::store::Placement::StripedHot`]). Placements
//! without one are rejected with a typed [`MigrateError`] instead of
//! silently corrupting the index on the first swap. In the multi-queue
//! server one migrator exists per queue (core), each owning its key
//! class's hot area, driven at engine-epoch boundaries — see
//! [`crate::server`].

use crate::store::{KvStore, SwapError};
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;
use std::collections::{HashMap, HashSet};

/// The migration economics, read from the machine model. All constants
/// are in core cycles; all decisions built on them are integer
/// arithmetic over deterministic access counts, so runs stay
/// bit-identical across execution modes and schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cycles one hot-area hit saves versus serving the same LLC hit
    /// from an average-distance slice: `mean(llc_latency(core, *)) -
    /// llc_latency(core, closest)`.
    pub saving_per_hit: u64,
    /// Initial estimate of one swap's cycle cost. [`HotMigrator`]
    /// refines it with the realized per-swap cycles after every
    /// executed batch, so the veto threshold tracks what swaps
    /// actually cost on this machine.
    pub swap_cost: u64,
    /// Floor for the self-tuned epoch length (accesses per epoch).
    pub min_epoch: usize,
    /// Ceiling for the self-tuned epoch length.
    pub max_epoch: usize,
    /// Most swaps one epoch merge may execute; approved candidates
    /// beyond it are deferred to the next merge, bounding the timed
    /// burst a single merge injects on the serving core.
    pub max_batch: usize,
    /// Consecutive swap-free epochs before the controller goes dormant.
    pub backoff_epochs: u32,
    /// Hysteresis margin: a dormant controller wakes only when the best
    /// candidate's projected benefit exceeds `wake_mult ×` the swap
    /// cost (an active one already swaps at `> 1×`).
    pub wake_mult: u64,
}

impl CostModel {
    /// Measures the economics from `m`'s calibrated constants, for a
    /// migrator serving on `core`.
    ///
    /// The per-hit saving is the machine's mean LLC slice latency from
    /// `core` minus its closest slice's — the cycles a hot-slot hit
    /// saves over the average slice a cold value lands in. The initial
    /// swap-cost estimate prices the swap's eight memory operations
    /// (two index reads, two value reads, four writes — see
    /// [`KvStore::swap_keys`]) at their worst case: DRAM latency per
    /// read, the store-miss cost per write. Deliberately conservative —
    /// the first executed batch replaces it with measured reality.
    pub fn measure(m: &Machine, core: usize) -> Self {
        let cfg = m.config();
        let near = u64::from(m.llc_latency(core, m.closest_slice(core)));
        let sum: u64 = (0..cfg.slices)
            .map(|s| u64::from(m.llc_latency(core, s)))
            .sum();
        let avg = sum / cfg.slices as u64;
        Self {
            saving_per_hit: avg.saturating_sub(near).max(1),
            swap_cost: 4 * u64::from(cfg.dram_latency) + 4 * u64::from(cfg.store_miss_cost),
            min_epoch: 256,
            max_epoch: 1 << 20,
            max_batch: 64,
            backoff_epochs: 3,
            wake_mult: 2,
        }
    }

    /// The same model with a different per-merge batch cap.
    ///
    /// # Panics
    ///
    /// Panics when `max_batch == 0` (the controller could never swap).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch cap must be positive");
        self.max_batch = max_batch;
        self
    }

    /// The same model with different epoch-tuning bounds.
    ///
    /// # Panics
    ///
    /// Panics when `min == 0` or `min > max`.
    #[must_use]
    pub fn with_epoch_bounds(mut self, min: usize, max: usize) -> Self {
        assert!(min > 0 && min <= max, "need 0 < min_epoch <= max_epoch");
        self.min_epoch = min;
        self.max_epoch = max;
        self
    }
}

/// Which swaps an epoch boundary executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPolicy {
    /// Promote the whole observed top set every epoch, unconditionally
    /// (the §F8b baseline). The migrator still prices each swap against
    /// the measured [`CostModel`] to report how many executed at a
    /// projected loss ([`MigrationReport::at_loss`]).
    Always,
    /// Execute only swaps whose projected benefit exceeds the measured
    /// cost, batched per merge, with epoch auto-tuning and dormancy
    /// back-off.
    CostAware(CostModel),
}

impl MigrationPolicy {
    /// The cost-aware policy with its model measured from `m` for
    /// `core` ([`CostModel::measure`]).
    pub fn cost_aware(m: &Machine, core: usize) -> Self {
        MigrationPolicy::CostAware(CostModel::measure(m, core))
    }
}

/// What one epoch's migration did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// Keys moved into the hot area (same number moved out).
    pub migrated: usize,
    /// Cycles spent copying values and rewriting index entries.
    pub cycles: Cycles,
    /// Accesses in this epoch that found their key already resident in
    /// the hot area (counted at access time, before this migration).
    pub hot_hits: u64,
    /// Accesses observed in this epoch.
    pub accesses: u64,
    /// Candidate swaps rejected by the economics test (projected
    /// benefit ≤ swap cost), including every candidate of a dormant
    /// epoch that failed to wake the controller.
    pub vetoed: u64,
    /// Candidate swaps that passed the economics test but exceeded the
    /// per-merge batch cap; they stay candidates for the next merge.
    pub deferred: u64,
    /// Executed swaps whose projected benefit was ≤ the measured swap
    /// cost — structurally zero under [`MigrationPolicy::CostAware`]
    /// (such candidates are vetoed, never executed); under
    /// [`MigrationPolicy::Always`] it counts the swaps the economics
    /// would have refused.
    pub at_loss: u64,
}

/// Why a [`HotMigrator`] could not be built or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrateError {
    /// The store's placement declares no hot area (for this core):
    /// there is nothing to migrate into, and swapping against an
    /// assumed layout would corrupt the index.
    NoHotArea {
        /// The serving core the migrator was requested for.
        core: usize,
        /// A rendering of the store's placement.
        placement: String,
    },
    /// A migration swap was rejected by the store.
    Swap(SwapError),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::NoHotArea { core, placement } => write!(
                f,
                "placement {placement} has no hot area for core {core}; \
                 migration needs HotSliceAware or StripedHot"
            ),
            MigrateError::Swap(e) => write!(f, "migration swap rejected: {e}"),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<SwapError> for MigrateError {
    fn from(e: SwapError) -> Self {
        MigrateError::Swap(e)
    }
}

/// Epoch-based hot-set tracker driving [`KvStore::swap_keys`].
#[derive(Debug)]
pub struct HotMigrator {
    /// Access counts within the current epoch.
    counts: HashMap<u32, u32>,
    /// Accesses per epoch (self-tuned under the cost-aware policy).
    epoch_len: usize,
    /// Accesses seen in the current epoch.
    seen: usize,
    /// Hot accesses seen in the current epoch.
    epoch_hits: u64,
    /// The serving core whose hot area this migrator owns.
    core: usize,
    /// The hot slot numbers, in the store's hot-area order.
    slots: Vec<usize>,
    /// The key currently stored in each hot slot (parallel to `slots`).
    resident: Vec<u32>,
    /// Membership view of `resident` for O(1) hot checks.
    hot_set: HashSet<u32>,
    /// The swap-decision policy.
    policy: MigrationPolicy,
    /// The economics constants ([`CostModel::measure`]d at
    /// construction; replaced by the policy's own model under
    /// [`MigrationPolicy::CostAware`]).
    model: CostModel,
    /// Running swap-cost estimate: starts at the model's, refined with
    /// the realized per-swap cycles of every executed batch.
    swap_cost_est: u64,
    /// Consecutive epochs that executed zero swaps.
    calm_epochs: u32,
    /// Back-off state: a dormant controller vetoes everything below the
    /// wake margin.
    dormant: bool,
    /// Cycle cost of the previous epoch's executed batch — the cost
    /// side of the realized benefit/cost ratio the epoch tuner reads.
    last_batch_cost: u64,
    /// Epochs whose realized benefit failed to cover the previous
    /// batch's cost (each lengthens the epoch).
    loss_epochs: u64,
}

impl HotMigrator {
    /// A migrator for `core`'s hot area of `store`, reading the store's
    /// *actual* placement geometry and live index layout (one untimed
    /// scan). Stores whose placement declares no hot area for `core`
    /// ([`crate::store::Placement::Normal`],
    /// [`crate::store::Placement::SliceAware`],
    /// [`crate::store::Placement::Striped`]) are rejected with
    /// [`MigrateError::NoHotArea`].
    ///
    /// The policy defaults to [`MigrationPolicy::Always`]; select the
    /// cost-aware controller with [`HotMigrator::with_policy`].
    ///
    /// # Panics
    ///
    /// Panics when `epoch_len == 0`.
    pub fn for_store(
        m: &Machine,
        store: &KvStore,
        core: usize,
        epoch_len: usize,
    ) -> Result<Self, MigrateError> {
        assert!(epoch_len > 0, "epoch must be positive");
        let slots = store
            .hot_slots(core)
            .ok_or_else(|| MigrateError::NoHotArea {
                core,
                placement: format!("{:?}", store.placement()),
            })?;
        let resident = store.residents(m, &slots);
        let hot_set = resident.iter().copied().collect();
        let model = CostModel::measure(m, core);
        Ok(Self {
            counts: HashMap::new(),
            epoch_len,
            seen: 0,
            epoch_hits: 0,
            core,
            slots,
            resident,
            hot_set,
            policy: MigrationPolicy::Always,
            model,
            swap_cost_est: model.swap_cost,
            calm_epochs: 0,
            dormant: false,
            last_batch_cost: 0,
            loss_epochs: 0,
        })
    }

    /// The same migrator under `policy`. Selecting
    /// [`MigrationPolicy::CostAware`] adopts the policy's model and
    /// clamps the epoch length into its tuning bounds.
    #[must_use]
    pub fn with_policy(mut self, policy: MigrationPolicy) -> Self {
        if let MigrationPolicy::CostAware(model) = policy {
            self.model = model;
            self.swap_cost_est = model.swap_cost;
            self.epoch_len = self.epoch_len.clamp(model.min_epoch, model.max_epoch);
        }
        self.policy = policy;
        self
    }

    /// Keys currently occupying the hot area, in hot-slot order.
    pub fn resident(&self) -> &[u32] {
        &self.resident
    }

    /// True when `key`'s value currently lives in a hot slot.
    pub fn is_hot(&self, key: u32) -> bool {
        self.hot_set.contains(&key)
    }

    /// The active policy.
    pub fn policy(&self) -> MigrationPolicy {
        self.policy
    }

    /// The current (possibly self-tuned) epoch length, in accesses.
    pub fn epoch_len(&self) -> usize {
        self.epoch_len
    }

    /// The running swap-cost estimate, in cycles.
    pub fn swap_cost_estimate(&self) -> u64 {
        self.swap_cost_est
    }

    /// True when hysteresis back-off has disabled migration (the
    /// controller still counts, and wakes when a candidate clears the
    /// wake margin).
    pub fn is_dormant(&self) -> bool {
        self.dormant
    }

    /// Epochs whose realized benefit failed to cover the previous
    /// batch's cost (the epoch tuner lengthened the epoch each time).
    pub fn loss_epochs(&self) -> u64 {
        self.loss_epochs
    }

    /// Counts one access without driving migration; returns whether the
    /// key was hot at access time. The engine-driven server calls this
    /// from `on_packet` (shards cannot swap — index entries of
    /// different classes share cache lines) and runs
    /// [`HotMigrator::run_epoch`] at the merge when
    /// [`HotMigrator::epoch_due`] reports a boundary.
    pub fn note(&mut self, key: u32) -> bool {
        *self.counts.entry(key).or_insert(0) += 1;
        self.seen += 1;
        let hot = self.is_hot(key);
        self.epoch_hits += hot as u64;
        hot
    }

    /// True when a full epoch of accesses has been observed and
    /// [`HotMigrator::run_epoch`] should run.
    pub fn epoch_due(&self) -> bool {
        self.seen >= self.epoch_len
    }

    /// Performs this epoch's migration through timed
    /// [`KvStore::swap_keys`] calls on the migrator's core, resets the
    /// epoch counters, and reports what happened. Under
    /// [`MigrationPolicy::CostAware`] this is where the economics veto,
    /// batch cap, dormancy hysteresis and epoch tuner all run.
    pub fn run_epoch(
        &mut self,
        m: &mut Machine,
        store: &KvStore,
    ) -> Result<MigrationReport, MigrateError> {
        // This epoch's top keys in a *total* order — (count desc, key
        // asc) — so ties cannot depend on the counts map's iteration
        // order and serial/parallel runs stay bit-identical.
        let mut by_count: Vec<(u32, u32)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        by_count.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let want: Vec<(u32, u32)> = by_count.iter().take(self.slots.len()).copied().collect();
        let want_set: HashSet<u32> = want.iter().map(|&(k, _)| k).collect();
        // Hot-slot occupants that cooled off, coldest first under the
        // same total order — (count asc, key asc); missing from the
        // counts map is coldest of all.
        let mut evictable: Vec<(usize, u32)> = self
            .resident
            .iter()
            .enumerate()
            .filter(|(_, k)| !want_set.contains(k))
            .map(|(i, &k)| (i, k))
            .collect();
        evictable.sort_unstable_by_key(|&(_, k)| (self.counts.get(&k).copied().unwrap_or(0), k));
        // Pair the hottest wanted key with the coldest evictable
        // occupant: each pair's net projected benefit, (count_in -
        // count_out) × saving, is non-increasing along the list, so the
        // economics scan below can stop at the first veto.
        let mut pairs: Vec<(u32, u32, usize, u32, u32)> = Vec::new();
        let mut ev = evictable.into_iter();
        for &(key, cin) in &want {
            if self.hot_set.contains(&key) {
                continue;
            }
            let Some((slot_idx, out_key)) = ev.next() else {
                break;
            };
            let cout = self.counts.get(&out_key).copied().unwrap_or(0);
            pairs.push((key, cin, slot_idx, out_key, cout));
        }
        let cost_aware = matches!(self.policy, MigrationPolicy::CostAware(_));
        let saving = self.model.saving_per_hit;
        let net = |cin: u32, cout: u32| u64::from(cin.saturating_sub(cout)) * saving;
        let mut migrated = 0usize;
        let mut cycles: Cycles = 0;
        let mut vetoed = 0u64;
        let mut deferred = 0u64;
        let mut at_loss = 0u64;
        // Hysteresis: a dormant controller only wakes when the best
        // candidate clears the wake margin; until then every candidate
        // is vetoed without touching the store.
        let mut execute = true;
        if cost_aware && self.dormant {
            let wake = pairs.first().is_some_and(|&(_, cin, _, _, cout)| {
                net(cin, cout) > self.model.wake_mult * self.swap_cost_est
            });
            if wake {
                self.dormant = false;
                self.calm_epochs = 0;
            } else {
                execute = false;
                vetoed = pairs.len() as u64;
            }
        }
        if execute {
            for (i, &(key, cin, slot_idx, out_key, cout)) in pairs.iter().enumerate() {
                if cost_aware {
                    if net(cin, cout) <= self.swap_cost_est {
                        // Benefit is non-increasing along the pair
                        // list: everything from here on is a loss.
                        vetoed += (pairs.len() - i) as u64;
                        break;
                    }
                    if migrated >= self.model.max_batch {
                        deferred += (pairs.len() - i) as u64;
                        break;
                    }
                } else if net(cin, cout) <= self.swap_cost_est {
                    at_loss += 1;
                }
                cycles += store.swap_keys(m, self.core, key, out_key)?;
                self.hot_set.remove(&out_key);
                self.hot_set.insert(key);
                self.resident[slot_idx] = key;
                migrated += 1;
            }
        }
        // Refine the swap-cost estimate with this batch's realized
        // per-swap cycles (equal-weight blend: stable, deterministic).
        if migrated > 0 {
            let measured = (cycles / migrated as u64).max(1);
            self.swap_cost_est = ((self.swap_cost_est + measured) / 2).max(1);
        }
        if cost_aware {
            // Back-off bookkeeping.
            if migrated == 0 {
                self.calm_epochs += 1;
                if self.calm_epochs >= self.model.backoff_epochs {
                    self.dormant = true;
                }
            } else {
                self.calm_epochs = 0;
            }
            // Epoch auto-tuning on the realized benefit/cost ratio: the
            // previous batch's swaps were supposed to earn this epoch's
            // hot hits. Paid more than harvested → double the epoch
            // (amortize further); harvested ≥ 8× → halve it (afford
            // faster tracking).
            if self.last_batch_cost > 0 {
                let realized = self.epoch_hits * saving;
                if realized < self.last_batch_cost {
                    self.loss_epochs += 1;
                    self.epoch_len = self.epoch_len.saturating_mul(2).min(self.model.max_epoch);
                } else if realized >= 8 * self.last_batch_cost {
                    self.epoch_len = (self.epoch_len / 2).max(self.model.min_epoch);
                }
            }
            self.last_batch_cost = cycles;
        }
        let report = MigrationReport {
            migrated,
            cycles,
            hot_hits: self.epoch_hits,
            accesses: self.seen as u64,
            vetoed,
            deferred,
            at_loss,
        };
        self.counts.clear();
        self.seen = 0;
        self.epoch_hits = 0;
        Ok(report)
    }

    /// Records one access; at epoch boundaries performs migration and
    /// returns the report. The convenience form of
    /// [`HotMigrator::note`] + [`HotMigrator::run_epoch`] for callers
    /// that own the whole machine (unit tests, single-threaded loops).
    pub fn record(
        &mut self,
        m: &mut Machine,
        store: &KvStore,
        key: u32,
    ) -> Result<Option<MigrationReport>, MigrateError> {
        self.note(key);
        if !self.epoch_due() {
            return Ok(None);
        }
        self.run_epoch(m, store).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Placement;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::MachineConfig;
    use slice_aware::alloc::SliceAllocator;
    use trafficgen::Rng64;

    fn machine() -> Machine {
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20))
    }

    fn build(m: &mut Machine, n: usize, placement: Placement) -> KvStore {
        let region = m.mem_mut().alloc(64 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        KvStore::build(m, &mut alloc, n, placement).unwrap()
    }

    fn setup(n: usize, hot: usize) -> (Machine, KvStore) {
        let mut m = machine();
        let store = build(
            &mut m,
            n,
            Placement::HotSliceAware {
                slice: 0,
                hot_count: hot,
            },
        );
        (m, store)
    }

    #[test]
    fn migration_moves_hot_keys_into_the_slice() {
        let (mut m, store) = setup(4096, 16);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 1000).unwrap();
        // Hammer keys 2000..2016 (initially in the cold, contiguous area).
        for i in 0..1000u32 {
            let key = 2000 + (i % 16);
            mig.record(&mut m, &store, key).unwrap();
        }
        for key in 2000..2016 {
            assert!(mig.is_hot(key), "key {key} should have migrated");
            let pa = store.value_pa(&mut m, key);
            assert_eq!(m.slice_of(pa), 0, "migrated value must live in slice 0");
        }
    }

    #[test]
    fn migration_preserves_values() {
        let (mut m, store) = setup(1024, 8);
        // Give distinctive contents to a future-hot key and a current
        // occupant.
        store.set(&mut m, 0, 500, &[0xaa; 64]);
        store.set(&mut m, 0, 3, &[0xbb; 64]);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 100).unwrap();
        for _ in 0..100 {
            mig.record(&mut m, &store, 500).unwrap();
        }
        let mut out = [0u8; 64];
        store.get(&mut m, 0, 500, &mut out);
        assert_eq!(out, [0xaa; 64], "migrated value intact");
        store.get(&mut m, 0, 3, &mut out);
        assert_eq!(out, [0xbb; 64], "evicted value intact");
    }

    #[test]
    fn stable_hot_set_stops_migrating() {
        let (mut m, store) = setup(1024, 4);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 200).unwrap();
        let mut reports = Vec::new();
        for round in 0..3 {
            for i in 0..200u32 {
                let key = 700 + (i % 4);
                if let Some(r) = mig.record(&mut m, &store, key).unwrap() {
                    reports.push((round, r));
                }
            }
        }
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].1.migrated, 4, "first epoch migrates the set");
        assert_eq!(reports[1].1.migrated, 0, "steady state is free");
        assert_eq!(reports[2].1.migrated, 0);
        assert_eq!(reports[1].1.cycles, 0);
        // Epoch hot-hit accounting: epoch 1 saw only cold keys; once the
        // set is resident every access is a hot hit.
        assert_eq!(reports[0].1.hot_hits, 0);
        assert_eq!(reports[1].1.hot_hits, 200);
        assert_eq!(reports[1].1.accesses, 200);
    }

    #[test]
    fn migration_adapts_when_the_hot_set_shifts() {
        // §8's motivating case: "variability of hot data".
        let (mut m, store) = setup(4096, 8);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 400).unwrap();
        for i in 0..400u32 {
            mig.record(&mut m, &store, 1000 + (i % 8)).unwrap();
        }
        assert!(mig.is_hot(1000));
        for i in 0..400u32 {
            mig.record(&mut m, &store, 3000 + (i % 8)).unwrap();
        }
        assert!(mig.is_hot(3000), "new hot set migrated in");
        assert!(!mig.is_hot(1000), "old hot set migrated out");
        let pa = store.value_pa(&mut m, 3000);
        assert_eq!(m.slice_of(pa), 0);
    }

    #[test]
    fn migration_cost_is_accounted() {
        let (mut m, store) = setup(1024, 4);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 50).unwrap();
        let mut report = None;
        for i in 0..50u32 {
            report = mig
                .record(&mut m, &store, 900 + (i % 4))
                .unwrap()
                .or(report);
        }
        let r = report.expect("epoch boundary reached");
        assert_eq!(r.migrated, 4);
        // Each swap copies two 64 B values and rewrites two index entries.
        assert!(r.cycles > 0);
    }

    #[test]
    fn placements_without_a_hot_area_are_rejected() {
        let mut m = machine();
        for placement in [
            Placement::Normal,
            Placement::SliceAware { slice: 0 },
            Placement::Striped {
                slices: vec![0, 2, 4, 6],
            },
        ] {
            let store = build(&mut m, 512, placement.clone());
            let err = HotMigrator::for_store(&m, &store, 0, 100).unwrap_err();
            assert!(
                matches!(err, MigrateError::NoHotArea { core: 0, .. }),
                "{placement:?} must be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn striped_hot_migrates_per_core_and_every_get_survives() {
        // The regression the for_store redesign exists for: a *striped*
        // store's resident layout is its key class, not (0..hot_count).
        // The old identity-assuming constructor would corrupt the index
        // on the first swap; for_store must migrate correctly and leave
        // every key's value reachable.
        let cores = 4;
        let n = 1024u32;
        let mut m = machine();
        let slices: Vec<usize> = (0..cores).map(|c| m.closest_slice(c)).collect();
        let store = build(
            &mut m,
            n as usize,
            Placement::StripedHot {
                slices: slices.clone(),
                hot_per_core: 8,
            },
        );
        // Every key gets a distinctive value derived from its id.
        let pattern = |k: u32| [k as u8 ^ (k >> 8) as u8; 64];
        for k in 0..n {
            store.set(&mut m, (k % 4) as usize, k, &pattern(k));
        }
        // Each core hammers a cold stretch of its own class.
        for (core, &home_slice) in slices.iter().enumerate() {
            let mut mig = HotMigrator::for_store(&m, &store, core, 400).unwrap();
            assert_eq!(
                mig.resident(),
                store
                    .hot_slots(core)
                    .unwrap()
                    .iter()
                    .map(|&s| s as u32)
                    .collect::<Vec<_>>(),
                "fresh striped store: hot slots hold their own keys"
            );
            let mut migrated = 0;
            for i in 0..400u32 {
                let key = 512 + (core as u32) + 4 * (i % 8);
                if let Some(r) = mig.record(&mut m, &store, key).unwrap() {
                    migrated += r.migrated;
                }
            }
            assert_eq!(migrated, 8, "core {core} migrates its observed set");
            for j in 0..8u32 {
                let key = 512 + (core as u32) + 4 * j;
                assert!(mig.is_hot(key));
                let pa = store.value_pa(&mut m, key);
                assert_eq!(
                    m.slice_of(pa),
                    home_slice,
                    "core {core}'s hot key {key} must live in its slice"
                );
            }
        }
        // The index is still a permutation: every key returns its value.
        let mut out = [0u8; 64];
        for k in 0..n {
            store.get(&mut m, (k % 4) as usize, k, &mut out);
            assert_eq!(out, pattern(k), "key {k} corrupted by migration");
        }
    }

    #[test]
    fn for_store_reads_a_migrated_layout_not_identity() {
        // Second half of the regression: a *new* migrator built against
        // an already-migrated store must see the real residents. The old
        // constructor assumed identity and would have evicted key 900's
        // slot while believing key 0 lived there.
        let (mut m, store) = setup(1024, 4);
        let mut first = HotMigrator::for_store(&m, &store, 0, 50).unwrap();
        for i in 0..50u32 {
            first.record(&mut m, &store, 900 + (i % 4)).unwrap();
        }
        assert!(first.is_hot(900));
        drop(first);
        let second = HotMigrator::for_store(&m, &store, 0, 50).unwrap();
        assert_eq!(
            second.resident(),
            &[900, 901, 902, 903],
            "a fresh migrator must read the migrated layout"
        );
        assert!(second.is_hot(901));
        assert!(!second.is_hot(0), "identity assumption is gone");
    }

    #[test]
    fn tied_counts_break_by_key_order() {
        // Every candidate and every evictable occupant has the same
        // count: promotion must pick ascending keys, eviction must evict
        // ascending keys, regardless of hash-map iteration order.
        let (mut m, store) = setup(1024, 4);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 8).unwrap();
        for key in [500u32, 800, 600, 700, 100, 300, 200, 400] {
            mig.record(&mut m, &store, key).unwrap();
        }
        // Top 4 under (count desc, key asc) with all counts == 1:
        // 100, 200, 300, 400.
        assert_eq!(mig.resident(), &[100, 200, 300, 400]);
    }

    /// A fixed economics model for boundary tests: saving 10, swap cost
    /// 100, no batch cap, back-off after 3 calm epochs.
    fn fixed_model() -> CostModel {
        CostModel {
            saving_per_hit: 10,
            swap_cost: 100,
            min_epoch: 1,
            max_epoch: 1 << 20,
            max_batch: usize::MAX,
            backoff_epochs: 3,
            wake_mult: 2,
        }
    }

    fn cost_aware_migrator(
        m: &Machine,
        store: &KvStore,
        epoch: usize,
        model: CostModel,
    ) -> HotMigrator {
        HotMigrator::for_store(m, store, 0, epoch)
            .unwrap()
            .with_policy(MigrationPolicy::CostAware(model))
    }

    #[test]
    fn break_even_boundary_vetoes_at_cost_and_swaps_above_it() {
        // saving 10, cost 100: a candidate with net 10 accesses
        // projects exactly 100 — the break-even boundary — and must be
        // vetoed (strict >); net 11 projects 110 and must swap.
        for (net_accesses, expect_swap) in [(9u32, false), (10, false), (11, true)] {
            let (mut m, store) = setup(1024, 4);
            let mut mig = cost_aware_migrator(&m, &store, net_accesses as usize, fixed_model());
            let mut last = None;
            for _ in 0..net_accesses {
                last = mig.record(&mut m, &store, 500).unwrap().or(last);
            }
            let r = last.expect("epoch boundary reached");
            if expect_swap {
                assert_eq!(r.migrated, 1, "net {net_accesses}: must swap");
                assert_eq!(r.vetoed, 0);
                assert!(mig.is_hot(500));
            } else {
                assert_eq!(r.migrated, 0, "net {net_accesses}: must veto");
                assert_eq!(r.vetoed, 1, "the boundary candidate is vetoed");
                assert!(!mig.is_hot(500));
            }
            assert_eq!(r.at_loss, 0, "cost-aware never swaps at a loss");
        }
    }

    #[test]
    fn boundary_nets_out_the_evicted_occupants_accesses() {
        // The swap also moves the occupant *out*: its accesses count
        // against the candidate. 20 hits on the newcomer minus 12 on
        // the coldest occupant = net 8 → 80 ≤ 100 → veto, even though
        // the newcomer alone would clear the bar.
        let (mut m, store) = setup(1024, 1);
        let mut mig = cost_aware_migrator(&m, &store, 32, fixed_model());
        let occupant = mig.resident()[0];
        for _ in 0..12 {
            mig.record(&mut m, &store, occupant).unwrap();
        }
        let mut last = None;
        for _ in 0..20 {
            last = mig.record(&mut m, &store, 500).unwrap().or(last);
        }
        let r = last.expect("epoch boundary reached");
        assert_eq!(r.migrated, 0, "net benefit must subtract the occupant");
        assert_eq!(r.vetoed, 1);
    }

    #[test]
    fn batch_cap_defers_approved_swaps_to_the_next_merge() {
        let (mut m, store) = setup(4096, 8);
        let model = fixed_model().with_max_batch(3);
        let mut mig = cost_aware_migrator(&m, &store, 8 * 200, model);
        // Eight keys, 200 accesses each: profitable (net 2000) by a
        // margin that survives the measured-cost refinement after the
        // first executed batch.
        let hammer = |mig: &mut HotMigrator, m: &mut Machine| {
            let mut last = None;
            for i in 0..8 * 200u32 {
                last = mig.record(m, &store, 2000 + (i % 8)).unwrap().or(last);
            }
            last.expect("epoch boundary reached")
        };
        let r1 = hammer(&mut mig, &mut m);
        assert_eq!(r1.migrated, 3, "first merge executes the batch cap");
        assert_eq!(r1.deferred, 5, "approved remainder is deferred");
        assert_eq!(r1.vetoed, 0);
        let r2 = hammer(&mut mig, &mut m);
        assert_eq!(r2.migrated, 3, "deferred candidates re-qualify");
        assert_eq!(r2.deferred, 2);
        let r3 = hammer(&mut mig, &mut m);
        assert_eq!(r3.migrated, 2, "the tail lands on the third merge");
        assert_eq!(r3.deferred, 0);
        for key in 2000..2008 {
            assert!(mig.is_hot(key), "key {key} eventually migrated");
        }
    }

    #[test]
    fn uniform_traffic_backs_off_and_never_swaps() {
        // Stationary uniform draws: per-epoch counts are all ~equal, no
        // candidate clears the break-even bar, and after backoff_epochs
        // calm epochs the controller goes dormant. Zero swaps, ever.
        let (mut m, store) = setup(1024, 16);
        let mut mig = cost_aware_migrator(&m, &store, 512, fixed_model());
        let mut rng = Rng64::seed_from_u64(0xfeed);
        let mut total_migrated = 0;
        let mut total_at_loss = 0;
        for _ in 0..8 * 512 {
            let key = rng.gen_range(0u32..1024);
            if let Some(r) = mig.record(&mut m, &store, key).unwrap() {
                total_migrated += r.migrated;
                total_at_loss += r.at_loss;
            }
        }
        assert_eq!(total_migrated, 0, "uniform traffic must never migrate");
        assert_eq!(total_at_loss, 0);
        assert!(mig.is_dormant(), "back-off must have engaged");
    }

    #[test]
    fn never_migrates_at_a_loss_under_stationary_uniform_grid() {
        // Seeded property grid over (store size, hot-area size, epoch,
        // measured machine model, seed): under stationary uniform
        // traffic the cost-aware controller executes zero swaps and
        // reports zero at-loss swaps, whatever the geometry.
        let mut meta = Rng64::seed_from_u64(0x10_55);
        for iter in 0..12u64 {
            let n = 1usize << meta.gen_range(8u32..12);
            let hot = 1usize << meta.gen_range(2u32..6);
            let epoch = 128usize << meta.gen_range(0u32..3);
            let seed = meta.next_u64();
            let (mut m, store) = setup(n, hot);
            let model = CostModel::measure(&m, 0);
            let mut mig = cost_aware_migrator(&m, &store, epoch, model);
            let mut rng = Rng64::seed_from_u64(seed);
            let mut migrated = 0usize;
            let mut at_loss = 0u64;
            for _ in 0..6 * epoch {
                let key = rng.gen_range(0u32..n as u32);
                if let Some(r) = mig.record(&mut m, &store, key).unwrap() {
                    migrated += r.migrated;
                    at_loss += r.at_loss;
                }
            }
            assert_eq!(
                migrated, 0,
                "iter {iter} (n {n}, hot {hot}, epoch {epoch}, seed {seed:#x}): \
                 migrated at a loss under uniform traffic"
            );
            assert_eq!(at_loss, 0, "iter {iter}: at-loss swaps reported");
            assert!(mig.is_dormant(), "iter {iter}: back-off never engaged");
        }
    }

    #[test]
    fn dormant_controller_wakes_on_a_clear_hot_set_shift() {
        // Hysteresis: uniform traffic puts the controller to sleep;
        // a genuine hot-set (net benefit > wake_mult × cost) wakes it.
        let (mut m, store) = setup(1024, 4);
        let mut mig = cost_aware_migrator(&m, &store, 256, fixed_model());
        let mut rng = Rng64::seed_from_u64(0xd0d0);
        for _ in 0..4 * 256 {
            let key = rng.gen_range(0u32..1024);
            mig.record(&mut m, &store, key).unwrap();
        }
        assert!(mig.is_dormant());
        // A skewed phase: 4 keys absorb the whole epoch (64 accesses
        // each → net 640 > 2 × 100).
        let mut migrated = 0;
        for i in 0..2 * 256u32 {
            if let Some(r) = mig.record(&mut m, &store, 600 + (i % 4)).unwrap() {
                migrated += r.migrated;
            }
        }
        assert!(!mig.is_dormant(), "a real hot set must wake the controller");
        assert_eq!(migrated, 4, "the shifted hot set migrated in");
        assert!(mig.is_hot(600));
    }

    #[test]
    fn marginal_candidates_do_not_wake_a_dormant_controller() {
        // Between 1× and wake_mult× the swap cost: an active controller
        // would swap, a dormant one stays asleep — that asymmetry is
        // the hysteresis.
        let (mut m, store) = setup(1024, 1);
        let mut mig = cost_aware_migrator(&m, &store, 16, fixed_model());
        let mut rng = Rng64::seed_from_u64(0xbace);
        for _ in 0..4 * 16 {
            let key = rng.gen_range(0u32..1024);
            mig.record(&mut m, &store, key).unwrap();
        }
        assert!(mig.is_dormant());
        // One key with 16 accesses: net 160 > 100 (would swap awake)
        // but ≤ 2 × 100 (stays dormant).
        let mut last = None;
        for _ in 0..16 {
            last = mig.record(&mut m, &store, 700).unwrap().or(last);
        }
        let r = last.expect("epoch boundary reached");
        assert_eq!(
            r.migrated, 0,
            "marginal benefit must not wake the controller"
        );
        assert_eq!(r.vetoed, 1);
        assert!(mig.is_dormant());
    }

    #[test]
    fn swap_cost_estimate_is_refined_from_measured_batches() {
        let (mut m, store) = setup(4096, 8);
        let model = CostModel::measure(&m, 0);
        let initial = model.swap_cost;
        let mut mig = cost_aware_migrator(&m, &store, 2048, model);
        assert_eq!(mig.swap_cost_estimate(), initial);
        // Warm the future-hot keys' index and value lines so their
        // swap reads hit cache: the realized swap is measurably cheaper
        // than the all-miss worst case the model seeds.
        let mut buf = [0u8; 64];
        for key in 2000..2008u32 {
            store.get(&mut m, 0, key, &mut buf);
        }
        // 256 accesses per key: net 2560 clears the 800-cycle seed.
        for i in 0..2048u32 {
            mig.record(&mut m, &store, 2000 + (i % 8)).unwrap();
        }
        assert!(
            mig.swap_cost_estimate() < initial,
            "an executed batch must refine the estimate below the \
             worst-case seed (got {} vs {initial})",
            mig.swap_cost_estimate()
        );
    }

    #[test]
    fn epoch_lengthens_when_a_batch_fails_to_pay_back() {
        // Epoch 1 migrates a hot set; epoch 2's traffic shifts entirely
        // away from it (uniform), so the realized benefit of the paid
        // batch is ~0 < its cost: the tuner must double the epoch and
        // count a loss epoch.
        let (mut m, store) = setup(4096, 8);
        let mut mig = cost_aware_migrator(&m, &store, 512, fixed_model());
        for i in 0..512u32 {
            mig.record(&mut m, &store, 2000 + (i % 8)).unwrap();
        }
        assert_eq!(mig.epoch_len(), 512, "no tuning signal after one batch");
        assert_eq!(mig.loss_epochs(), 0);
        let mut rng = Rng64::seed_from_u64(0xabad);
        for _ in 0..512 {
            let key = rng.gen_range(0u32..1024);
            mig.record(&mut m, &store, key).unwrap();
        }
        assert_eq!(mig.loss_epochs(), 1, "the unpaid batch is a loss epoch");
        assert_eq!(mig.epoch_len(), 1024, "loss must double the epoch");
    }

    #[test]
    fn epoch_shortens_when_the_batch_pays_back_richly() {
        // A stable hot set: the batch's cost is recouped many times
        // over by the next epoch's hot hits, so the tuner shortens the
        // epoch (down to min_epoch) to track churn faster.
        let (mut m, store) = setup(4096, 8);
        let model = fixed_model().with_epoch_bounds(128, 1 << 20);
        let mut mig = cost_aware_migrator(&m, &store, 2048, model);
        // Two hot keys: the batch costs ~2 swaps, the following epoch's
        // 2048 hot hits realize ≥ 8× that.
        for _round in 0..3 {
            for i in 0..2048u32 {
                mig.record(&mut m, &store, 2000 + (i % 2)).unwrap();
            }
        }
        assert!(
            mig.epoch_len() < 2048,
            "a richly paying batch must shorten the epoch, got {}",
            mig.epoch_len()
        );
        assert_eq!(mig.loss_epochs(), 0);
    }

    #[test]
    fn always_policy_reports_its_at_loss_swaps() {
        // The baseline policy swaps unconditionally; the measured
        // economics must flag tail swaps that project a loss.
        let (mut m, store) = setup(1024, 8);
        let mut mig = HotMigrator::for_store(&m, &store, 0, 64).unwrap();
        // One genuinely hot key, seven one-hit wonders.
        let mut last = None;
        for i in 0..64u32 {
            let key = if i < 57 { 500 } else { 600 + i };
            last = mig.record(&mut m, &store, key).unwrap().or(last);
        }
        let r = last.expect("epoch boundary reached");
        assert_eq!(r.migrated, 8, "Always promotes the full top set");
        assert!(
            r.at_loss >= 7,
            "the one-hit wonders project a loss, got {}",
            r.at_loss
        );
        assert_eq!(r.vetoed, 0, "Always never vetoes");
        assert_eq!(r.deferred, 0, "Always never defers");
    }

    #[test]
    fn cost_model_is_measured_from_the_machine() {
        let m = machine();
        let model = CostModel::measure(&m, 0);
        // The saving is the real slice-latency spread, not a constant.
        let near = u64::from(m.llc_latency(0, m.closest_slice(0)));
        let far: u64 = (0..m.config().slices)
            .map(|s| u64::from(m.llc_latency(0, s)))
            .max()
            .unwrap();
        assert!(model.saving_per_hit >= 1);
        assert!(model.saving_per_hit <= far - near);
        // The swap-cost seed prices the swap's memory operations from
        // the machine's own constants.
        assert_eq!(
            model.swap_cost,
            4 * u64::from(m.config().dram_latency) + 4 * u64::from(m.config().store_miss_cost)
        );
        // Different cores can see different slice geometry but must
        // measure a positive saving everywhere.
        for core in 0..m.config().cores {
            assert!(CostModel::measure(&m, core).saving_per_hit >= 1);
        }
    }

    #[test]
    fn migrate_error_exhaustive_match_and_display() {
        // Exhaustive match: adding a MigrateError variant must break
        // this test (no wildcard arm), and every variant's Display must
        // carry its diagnostic payload.
        let errs = [
            MigrateError::NoHotArea {
                core: 3,
                placement: "Striped".into(),
            },
            MigrateError::Swap(SwapError::KeyOutOfRange { key: 9, len: 4 }),
        ];
        for e in errs {
            let msg = match &e {
                MigrateError::NoHotArea { core, placement } => {
                    let m = e.to_string();
                    assert!(m.contains(&core.to_string()) && m.contains(placement.as_str()));
                    m
                }
                MigrateError::Swap(SwapError::KeyOutOfRange { key, len }) => {
                    let m = e.to_string();
                    assert!(m.contains(&key.to_string()) && m.contains(&len.to_string()));
                    m
                }
            };
            assert!(!msg.is_empty());
            // MigrateError is a std::error::Error with a useful Debug.
            let _: &dyn std::error::Error = &e;
            assert!(!format!("{e:?}").is_empty());
        }
        // From<SwapError> keeps the payload intact.
        let e: MigrateError = SwapError::KeyOutOfRange { key: 7, len: 2 }.into();
        assert_eq!(
            e,
            MigrateError::Swap(SwapError::KeyOutOfRange { key: 7, len: 2 })
        );
    }
}
