//! The multi-queue KVS server loop and its throughput measurement.
//!
//! Fig. 8 measures server-side transactions per second with the client
//! saturating the server ("a client sends requests ... at high rate to
//! stress the server. We measured the performance ... on the server side
//! so that we could ignore the networking bottlenecks"). The server here
//! runs closed-loop on the shared [`engine::Engine`]: every RX queue is
//! kept stocked with requests by its own client generator, one worker
//! core polls each queue, and TPS is requests served over the serving
//! cores' busy time. With one queue this is exactly the paper's Fig. 8
//! setup; with N queues it is the §8 multi-core extension, where
//! [`crate::store::Placement::Striped`] homes each core's key class in
//! that core's closest slice.

use crate::migrate::{HotMigrator, MigrationPolicy};
use crate::proto::{
    read_deadline, read_request, write_request, KvOp, RequestGen, REQUEST_SIZE, VALUE_OFF,
};
use crate::store::{KvStore, Placement};
use engine::{
    AdmissionPolicy, Ctx, Engine, EngineConfig, Execution, Hw, MergeCtx, NicDrops, QueueApp,
    Scheduler, Verdict, WorkerSpec,
};
use llc_sim::machine::Machine;
use rte::fault::FaultPlan;
use rte::mempool::MbufPool;
use rte::nic::{DropReason, HeadroomPolicy, Port, RxCompletion, TxDesc};
use trafficgen::FlowTuple;

/// Frame offset where the KVS payload begins (after Ethernet/IPv4/TCP).
pub const PAYLOAD_OFF: usize = 54;

/// Per-request server work besides store access: RX bookkeeping, request
/// parse, response assembly. Calibrated so the all-cached request path
/// lands near the paper's ~160-cycle figure (§3.1).
pub const SERVE_WORK: u64 = 15;

/// How (and whether) the serving cores migrate their hot areas (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MigrationMode {
    /// No migration. Stores with a hot area are still *monitored*
    /// (hot-hit counters) but never mutated.
    #[default]
    Off,
    /// The PR 4 baseline: promote the whole observed top set every
    /// `epoch` accesses, unconditionally
    /// ([`MigrationPolicy::Always`]).
    Always {
        /// Accesses per migration epoch (per core).
        epoch: usize,
    },
    /// The cost-aware self-tuning controller
    /// ([`MigrationPolicy::CostAware`]), with its economics measured
    /// from the machine model per serving core and `epoch` as the
    /// initial (self-tuned) epoch length.
    CostAware {
        /// Initial accesses per migration epoch (per core).
        epoch: usize,
    },
}

impl MigrationMode {
    /// The configured epoch length, when migration is on.
    pub fn epoch(&self) -> Option<usize> {
        match *self {
            MigrationMode::Off => None,
            MigrationMode::Always { epoch } | MigrationMode::CostAware { epoch } => Some(epoch),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Serving cores: core *i* polls RX queue *i*, for `0 ≤ i < cores`.
    pub cores: usize,
    /// Requests to serve (across all cores).
    pub requests: usize,
    /// PMD burst size.
    pub burst: usize,
    /// RX descriptor ring depth (per queue).
    pub queue_depth: usize,
    /// GET ratio in permille (1000 = 100 % GET).
    pub get_permille: u32,
    /// RNG seed.
    pub seed: u64,
    /// Fault-injection plan applied to offered requests.
    pub faults: FaultPlan,
    /// Serial (reference) or parallel worker execution; results are
    /// bit-identical either way.
    pub execution: Execution,
    /// Hot-set migration mode (§8). When not [`MigrationMode::Off`],
    /// each serving core runs a [`HotMigrator`] over its hot area,
    /// which requires a placement with one hot area per core:
    /// [`Placement::HotSliceAware`] on a single core or
    /// [`Placement::StripedHot`] with one slice per core.
    pub migration: MigrationMode,
    /// Event-driven virtual-time scheduling (default) or the engine's
    /// reference tick-stepper; reports are bit-identical either way
    /// (only `EngineReport::sched` differs).
    pub scheduler: Scheduler,
}

impl ServerConfig {
    /// Fig. 8 defaults: one core, bursts of 32, no faults.
    pub fn fig8(requests: usize, get_permille: u32, seed: u64) -> Self {
        Self {
            cores: 1,
            requests,
            burst: 32,
            queue_depth: 256,
            get_permille,
            seed,
            faults: FaultPlan::none(),
            execution: Execution::Serial,
            scheduler: Scheduler::default(),
            migration: MigrationMode::Off,
        }
    }

    /// The same configuration serving on `cores` cores (queue *i* on
    /// core *i*).
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// The same configuration with a fault plan applied.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// The same configuration with the given execution mode.
    #[must_use]
    pub fn with_execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// The same configuration with unconditional (always-migrate)
    /// hot-set migration every `epoch` accesses per core.
    ///
    /// # Panics
    ///
    /// Panics when `epoch` is 0.
    #[must_use]
    pub fn with_migration(mut self, epoch: usize) -> Self {
        assert!(epoch > 0, "migration epoch must be positive");
        self.migration = MigrationMode::Always { epoch };
        self
    }

    /// The same configuration with the cost-aware self-tuning migration
    /// controller, starting from `epoch` accesses per core.
    ///
    /// # Panics
    ///
    /// Panics when `epoch` is 0.
    #[must_use]
    pub fn with_cost_aware_migration(mut self, epoch: usize) -> Self {
        assert!(epoch > 0, "migration epoch must be positive");
        self.migration = MigrationMode::CostAware { epoch };
        self
    }
}

/// Per-cause drop accounting for a server run: the shared NIC/driver
/// ledger plus the KVS's software-level causes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerDrops {
    /// NIC/driver drops (descriptor exhaustion, pool starvation, CRC,
    /// link, stalls, TX-path faults), as accounted by the engine.
    pub nic: NicDrops,
    /// Requests delivered but rejected by the parser (bad opcode).
    pub malformed: u64,
    /// Requests delivered but too short to carry opcode/key/value.
    pub truncated: u64,
    /// Requests already past their wire deadline when the server picked
    /// them up (expired-on-arrival: dropped before the store access, no
    /// response sent).
    pub expired: u64,
}

impl ServerDrops {
    /// Every request dropped, across all causes.
    pub fn total(&self) -> u64 {
        self.nic.total() + self.malformed + self.truncated + self.expired
    }
}

impl std::fmt::Display for ServerDrops {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} malformed={} truncated={} expired={}",
            self.nic, self.malformed, self.truncated, self.expired
        )
    }
}

/// One RX queue's share of a server run. The per-queue reports of a
/// [`ServerReport`] partition the aggregate exactly: summing any counter
/// over the queues reproduces the aggregate value.
#[derive(Debug, Clone, Copy)]
pub struct QueueReport {
    /// The queue (and its serving core).
    pub queue: usize,
    /// Requests offered to this queue this run.
    pub offered: u64,
    /// Completions a previous run left in this queue's ready ring.
    pub carried: u64,
    /// Requests served (responses transmitted) by this queue's core.
    pub served: u64,
    /// GETs among the processed requests.
    pub gets: u64,
    /// Per-cause drop accounting for this queue.
    pub drops: ServerDrops,
    /// Requests still sitting in this queue's RX ring at the end.
    pub in_flight: u64,
    /// Busy cycles on this queue's serving core.
    pub busy_cycles: u64,
    /// This core's transactions per second.
    pub tps: f64,
    /// Served requests whose key was resident in this core's hot area
    /// at access time (0 when the placement has no hot area).
    pub hot_hits: u64,
    /// Keys this core's migrator promoted into its hot area.
    pub migrated: u64,
    /// Cycles this core spent performing migration swaps (included in
    /// `busy_cycles`).
    pub migration_cycles: u64,
    /// Candidate swaps the cost-aware economics rejected on this core
    /// (projected benefit ≤ measured swap cost, or dormant epochs).
    pub swaps_vetoed: u64,
    /// Approved swaps deferred past a merge's batch cap on this core.
    pub swaps_deferred: u64,
    /// Executed swaps whose projected benefit was ≤ the measured cost —
    /// structurally 0 under [`MigrationMode::CostAware`]; under
    /// [`MigrationMode::Always`] the swaps the economics would refuse.
    pub swaps_at_loss: u64,
}

/// What a server run reports.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Requests the clients offered this run.
    pub offered: u64,
    /// Completions carried in from a previous run on the same port.
    pub carried: u64,
    /// Requests served (responses transmitted).
    pub served: u64,
    /// GETs among the processed requests.
    pub gets: u64,
    /// Per-cause drop accounting (`offered + carried == served +
    /// drops.total() + in_flight` — asserted before this report is built).
    pub drops: ServerDrops,
    /// Requests still sitting in the RX rings when the run ended.
    pub in_flight: u64,
    /// Busy cycles on the busiest serving core (the run's wall time).
    pub busy_cycles: u64,
    /// Transactions per second at the machine's frequency (aggregate
    /// over all cores, measured over the busiest core's time).
    pub tps: f64,
    /// Mean cycles per request on the busiest core.
    pub cycles_per_request: f64,
    /// Served requests whose key was hot at access time, summed over
    /// all cores (the per-queue `hot_hits` partition this exactly).
    pub hot_hits: u64,
    /// Keys promoted into hot areas, summed over all cores (the
    /// per-queue `migrated` partition this exactly).
    pub migrated: u64,
    /// Cycles spent on migration swaps, summed over all cores (the
    /// per-queue `migration_cycles` partition this exactly).
    pub migration_cycles: u64,
    /// Candidate swaps the cost-aware economics rejected, summed over
    /// all cores (per-queue `swaps_vetoed` partition this exactly).
    pub swaps_vetoed: u64,
    /// Approved swaps deferred past merge batch caps, summed over all
    /// cores (per-queue `swaps_deferred` partition this exactly).
    pub swaps_deferred: u64,
    /// Executed swaps at a projected loss, summed over all cores
    /// (per-queue `swaps_at_loss` partition this exactly; structurally
    /// 0 under [`MigrationMode::CostAware`]).
    pub swaps_at_loss: u64,
    /// The per-queue breakdown; counters sum exactly to the aggregate.
    pub per_queue: Vec<QueueReport>,
}

impl ServerReport {
    /// Fraction of served requests that found their key already in a
    /// hot slot (0 when nothing was served or no hot area exists).
    pub fn hot_hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.hot_hits as f64 / self.served as f64
        }
    }
}

/// Finds a client 5-tuple (varying the source port upward from `base`)
/// that the port's steering maps to `queue`. The multi-queue closed
/// loop uses one such flow per queue so each request generator feeds
/// exactly one serving core.
///
/// # Panics
///
/// Panics when no source port steers to `queue` (impossible for RSS
/// over a power-of-two queue count).
pub fn flow_for_queue(port: &mut Port, base: FlowTuple, queue: usize) -> FlowTuple {
    for p in 0..=u16::MAX {
        let f = FlowTuple {
            src_port: base.src_port.wrapping_add(p),
            ..base
        };
        if port.route(&f).0 == queue {
            return f;
        }
    }
    panic!("no source port steers to queue {queue}")
}

/// What happened to one *delivered* request: the shared serve path's
/// outcome vocabulary, used by the closed-loop [`KvApp`], the
/// open-loop server app (`crate::openloop`), and external tenants
/// embedding the KVS serve path (`tenancy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Parsed, in deadline, store accessed, response transmitted.
    Ok {
        /// The request's opcode.
        op: KvOp,
    },
    /// Past its wire deadline on arrival; dropped before the store
    /// access, no response sent.
    Expired,
    /// Too short to carry opcode/key (or a SET value cut off).
    Truncated,
    /// Unknown opcode.
    Malformed,
}

/// The serve path every KVS server app shares: parse the request from
/// the frame's first cache line, check its wire deadline, run the store
/// access, and (for a served request) write the response payload in
/// place. Returns the outcome plus this request's hot-hit delta (0
/// without a migrator). The *caller* turns the outcome into a
/// [`Verdict`] and its own counters.
pub fn serve_packet(
    store: &KvStore,
    migrator: Option<&mut HotMigrator>,
    ctx: &mut Ctx<'_>,
    comp: &RxCompletion,
) -> (Served, u64) {
    // Parse the request: opcode + key + deadline live in the frame's
    // first 64 B line, the one CacheDirector places. Never read past
    // the (possibly truncated) frame.
    let wire_len = usize::from(comp.len);
    let mut req_bytes = [0u8; 64];
    let readable = wire_len.min(req_bytes.len());
    ctx.m
        .read_bytes(ctx.core, comp.data_pa, &mut req_bytes[..readable]);
    let Some(req) = read_request(&req_bytes[..readable]) else {
        let outcome = if wire_len < crate::proto::KEY_OFF + 4 {
            Served::Truncated
        } else {
            Served::Malformed
        };
        return (outcome, 0);
    };
    if req.op == KvOp::Set && wire_len < VALUE_OFF + 64 {
        // A SET whose value was cut off on the wire.
        return (Served::Truncated, 0);
    }
    // Expired-on-arrival: the parse already happened (header read is
    // timed), but the store access and response are skipped — the
    // cheapest place to cut an overloaded queue's losses.
    if let Some(deadline_ns) = read_deadline(&req_bytes[..readable]) {
        if ctx.wall_ns() > deadline_ns {
            return (Served::Expired, 0);
        }
    }
    ctx.m.advance(ctx.core, SERVE_WORK);
    let mut hot_hits = 0;
    if let Some(mig) = migrator {
        // Untimed bookkeeping: counts feed the next migration epoch
        // and the hot-hit ledger, without perturbing served timing.
        hot_hits = mig.note(req.key) as u64;
    }
    match req.op {
        KvOp::Get => {
            let mut value = [0u8; 64];
            store.get(ctx.m, ctx.core, req.key, &mut value);
            // Write the value into the response payload.
            ctx.m
                .write_bytes(ctx.core, comp.data_pa.add(VALUE_OFF as u64), &value);
        }
        KvOp::Set => {
            let mut data = [0u8; 64];
            ctx.m
                .read_bytes(ctx.core, comp.data_pa.add(VALUE_OFF as u64), &mut data);
            store.set(ctx.m, ctx.core, req.key, &data);
        }
    }
    (Served::Ok { op: req.op }, hot_hits)
}

/// The KVS as a [`QueueApp`]: parse → store access → response, with
/// served/GET/parse-failure counters. One instance exists per worker
/// (queue); all instances share one read-only [`KvStore`] handle —
/// SETs mutate simulated memory only, and the multi-queue key
/// partition keeps concurrent workers' writes disjoint.
struct KvApp<'s> {
    store: &'s KvStore,
    served: u64,
    gets: u64,
    malformed: u64,
    truncated: u64,
    expired: u64,
    /// This queue's hot-area monitor/migrator; `None` when the store's
    /// placement declares no hot area for this core. Access counting
    /// happens untimed in `on_packet`; the timed migration swaps run
    /// only at epoch merges (see `epoch_migrate`) because index entries
    /// of different key classes share cache lines, which worker shards
    /// must not co-write.
    migrator: Option<HotMigrator>,
    hot_hits: u64,
    migrated: u64,
    migration_cycles: u64,
    swaps_vetoed: u64,
    swaps_deferred: u64,
    swaps_at_loss: u64,
}

impl KvApp<'_> {
    /// Runs this core's migration at an epoch merge when due. Called
    /// from the engine's epoch hook on the coordinator, where the
    /// machine is fully merged, so the timed swaps land on this core
    /// identically in serial and parallel execution.
    fn epoch_migrate(&mut self, mc: &mut MergeCtx<'_>) {
        let Some(mig) = &mut self.migrator else {
            return;
        };
        if !mig.epoch_due() {
            return;
        }
        let rep = mig
            .run_epoch(mc.m, self.store)
            .expect("noted keys were parsed from served requests, so they are in range");
        self.migrated += rep.migrated as u64;
        self.migration_cycles += rep.cycles;
        self.swaps_vetoed += rep.vetoed;
        self.swaps_deferred += rep.deferred;
        self.swaps_at_loss += rep.at_loss;
    }
}

impl QueueApp for KvApp<'_> {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, comp: &RxCompletion) -> Verdict {
        let (outcome, hot_hits) = serve_packet(self.store, self.migrator.as_mut(), ctx, comp);
        self.hot_hits += hot_hits;
        match outcome {
            Served::Ok { op } => {
                if op == KvOp::Get {
                    self.gets += 1;
                }
                self.served += 1;
                Verdict::Tx(TxDesc {
                    mbuf: comp.mbuf,
                    data_pa: comp.data_pa,
                    len: comp.len,
                })
            }
            Served::Expired => {
                self.expired += 1;
                Verdict::Drop
            }
            Served::Truncated => {
                self.truncated += 1;
                Verdict::Drop
            }
            Served::Malformed => {
                self.malformed += 1;
                Verdict::Drop
            }
        }
    }
}

/// Runs the closed-loop server benchmark.
///
/// `gens` supplies one client generator per RX queue (each must steer
/// to its own queue — see [`flow_for_queue`]); requests are DMA-ed into
/// mbufs through the normal NIC path (DDIO), served from `store` by one
/// worker core per queue, and responses transmitted back. Completions a
/// previous run left in the ready rings are served this run without
/// being offered this run; the engine's conservation invariant carries
/// them in.
///
/// # Panics
///
/// Panics when `gens.len() != cfg.cores`, the port's queue count does
/// not match, or a generator's flow steers to the wrong queue.
pub fn run_server(
    m: &mut Machine,
    store: &KvStore,
    pool: &mut MbufPool,
    port: &mut Port,
    policy: &mut dyn HeadroomPolicy,
    gens: &mut [RequestGen],
    cfg: &ServerConfig,
) -> ServerReport {
    let cores = cfg.cores;
    assert!(cores > 0, "no serving cores");
    assert_eq!(gens.len(), cores, "one request generator per queue");
    assert_eq!(port.num_queues(), cores, "one RX queue per serving core");
    for (i, g) in gens.iter().enumerate() {
        assert_eq!(
            port.route(&g.flow()).0,
            i,
            "generator {i}'s flow must steer to queue {i} (see flow_for_queue)"
        );
    }
    // A hot area can be monitored/migrated only when each serving core
    // owns exactly one: HotSliceAware's single hot area on one core, or
    // StripedHot's per-class hot pools with one class per core. (Two
    // cores sharing one hot area would hold diverging resident views
    // and silently undo each other's swaps.)
    let monitored = match store.placement() {
        Placement::HotSliceAware { .. } => cores == 1,
        Placement::StripedHot { slices, .. } => slices.len() == cores,
        _ => false,
    };
    assert!(
        cfg.migration == MigrationMode::Off || monitored,
        "migration needs one hot area per serving core \
         (HotSliceAware on a single core, or StripedHot with one slice \
         per core); got {:?} on {} cores",
        store.placement(),
        cores
    );
    // With migration off the migrators still monitor hot hits;
    // usize::MAX keeps `epoch_due` forever false.
    let epoch_len = cfg.migration.epoch().unwrap_or(usize::MAX);
    let apps: Vec<KvApp<'_>> = (0..cores)
        .map(|q| KvApp {
            store,
            served: 0,
            gets: 0,
            malformed: 0,
            truncated: 0,
            expired: 0,
            migrator: monitored.then(|| {
                let mig = HotMigrator::for_store(m, store, q, epoch_len)
                    .expect("placement declared a hot area for every serving core");
                if let MigrationMode::CostAware { .. } = cfg.migration {
                    // Economics measured per core: each serving core's
                    // slice distances price its own migrations.
                    mig.with_policy(MigrationPolicy::cost_aware(m, q))
                } else {
                    mig
                }
            }),
            hot_hits: 0,
            migrated: 0,
            migration_cycles: 0,
            swaps_vetoed: 0,
            swaps_deferred: 0,
            swaps_at_loss: 0,
        })
        .collect();
    let ecfg = EngineConfig {
        workers: WorkerSpec::run_to_completion(cores),
        queue_depth: cfg.queue_depth,
        burst: cfg.burst,
        faults: cfg.faults.clone(),
        execution: cfg.execution,
        admission: AdmissionPolicy::AcceptAll,
        scheduler: cfg.scheduler,
    };
    let mut hw = Hw {
        m,
        port,
        pool,
        policy,
    };
    let mut eng = Engine::new(apps, ecfg, &mut hw);
    if cfg.migration != MigrationMode::Off {
        // Migration runs at epoch merges on the coordinator: the merged
        // machine is available there in both execution modes, so the
        // timed swaps stay bit-identical serial vs. parallel. The hook
        // moves no packets, hence 0.
        eng.set_epoch_hook(Box::new(|apps, mc| {
            for app in apps.iter_mut() {
                app.epoch_migrate(mc);
            }
            0
        }));
    }
    let starts: Vec<u64> = (0..cores).map(|c| hw.m.now(c)).collect();
    let mut frame = vec![0u8; REQUEST_SIZE];
    let mut seq = 0u64;
    // A generous ceiling on total offers: under pathological fault plans
    // that reject or shed nearly every frame (so `served` cannot reach
    // the target), the loop still terminates with conservation intact.
    let offer_cap = (cfg.requests as u64)
        .saturating_mul(16)
        .saturating_add(16 * (cfg.queue_depth * cores) as u64);
    // The clients keep every queue saturated (closed loop): top each
    // queue up with fresh requests before each poll round. The attempt
    // cap bounds a top-up when the fault plan rejects every frame (e.g.
    // a stall window, where no offer consumes a descriptor).
    while (eng.delivered() as usize) < cfg.requests && eng.offered() < offer_cap {
        let t = eng.now_ns();
        let mut progressed = false;
        for (q, gen) in gens.iter_mut().enumerate() {
            let mut attempts = 0;
            while hw.port.posted_count(q) > 0 && attempts < 2 * cfg.queue_depth {
                attempts += 1;
                let req = gen.next_request();
                nfv::packet::encode_frame(&mut frame, &gen.flow(), REQUEST_SIZE, t, seq);
                seq += 1;
                write_request(&mut frame, &req);
                match eng.offer(&mut hw, &gen.flow(), &frame, t) {
                    Ok(_) => progressed = true,
                    Err(engine::Rejection::Nic(DropReason::NoDescriptor)) => break,
                    Err(_) => {}
                }
            }
        }
        if eng.step(&mut hw) > 0 {
            progressed = true;
        }
        if !progressed {
            // Wedged: every queue rejected its offers and no worker had
            // anything to poll (e.g. an unbounded stall window).
            break;
        }
    }
    // Closed-loop runs legitimately end with requests in flight; the
    // engine asserts conservation per queue, globally, and against the
    // NIC's counters.
    let (rep, apps) = eng.finish(&mut hw);
    let freq_hz = hw.m.config().freq_ghz * 1e9;
    let mut busy_max = 0u64;
    let mut per_queue = Vec::with_capacity(cores);
    for (q, l) in rep.per_queue.iter().enumerate() {
        let busy = hw.m.now(q) - starts[q];
        busy_max = busy_max.max(busy);
        per_queue.push(QueueReport {
            queue: q,
            offered: l.offered,
            carried: l.carried,
            served: l.delivered,
            gets: apps[q].gets,
            drops: ServerDrops {
                nic: l.nic,
                malformed: apps[q].malformed,
                truncated: apps[q].truncated,
                expired: apps[q].expired,
            },
            in_flight: l.in_flight,
            busy_cycles: busy,
            tps: if busy == 0 {
                0.0
            } else {
                l.delivered as f64 / (busy as f64 / freq_hz)
            },
            hot_hits: apps[q].hot_hits,
            migrated: apps[q].migrated,
            migration_cycles: apps[q].migration_cycles,
            swaps_vetoed: apps[q].swaps_vetoed,
            swaps_deferred: apps[q].swaps_deferred,
            swaps_at_loss: apps[q].swaps_at_loss,
        });
    }
    let drops = ServerDrops {
        nic: rep.nic,
        malformed: apps.iter().map(|a| a.malformed).sum(),
        truncated: apps.iter().map(|a| a.truncated).sum(),
        expired: apps.iter().map(|a| a.expired).sum(),
    };
    debug_assert_eq!(
        rep.app_drops,
        drops.malformed + drops.truncated + drops.expired
    );
    let served = rep.delivered;
    let tps = if busy_max == 0 {
        0.0
    } else {
        served as f64 / (busy_max as f64 / freq_hz)
    };
    ServerReport {
        offered: rep.offered,
        carried: rep.carried,
        served,
        gets: apps.iter().map(|a| a.gets).sum(),
        drops,
        in_flight: rep.in_flight,
        busy_cycles: busy_max,
        tps,
        cycles_per_request: if served == 0 {
            0.0
        } else {
            busy_max as f64 / served as f64
        },
        hot_hits: apps.iter().map(|a| a.hot_hits).sum(),
        migrated: apps.iter().map(|a| a.migrated).sum(),
        migration_cycles: apps.iter().map(|a| a.migration_cycles).sum(),
        swaps_vetoed: apps.iter().map(|a| a.swaps_vetoed).sum(),
        swaps_deferred: apps.iter().map(|a| a.swaps_deferred).sum(),
        swaps_at_loss: apps.iter().map(|a| a.swaps_at_loss).sum(),
        per_queue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Placement;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::MachineConfig;
    use rte::nic::FixedHeadroom;
    use rte::steering::{Rss, Steering};
    use slice_aware::alloc::SliceAllocator;
    use trafficgen::ZipfGen;

    struct Bench {
        m: Machine,
        store: KvStore,
        pool: MbufPool,
        port: Port,
    }

    fn build(n: usize, placement: Placement, region_mb: usize) -> Bench {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
        let region = m.mem_mut().alloc(region_mb << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        let store = KvStore::build(&mut m, &mut alloc, n, placement).unwrap();
        let pool = MbufPool::create(&mut m, 1024, 128, 2048).unwrap();
        let port = Port::new(0, Steering::Rss(Rss::new(1)), 256);
        Bench {
            m,
            store,
            pool,
            port,
        }
    }

    fn run(bench: &mut Bench, get_permille: u32, theta: f64, requests: usize) -> ServerReport {
        let n = bench.store.len() as u64;
        let keygen = ZipfGen::new(n, theta, 99);
        let mut gens = [RequestGen::new(keygen, get_permille, 7)];
        let mut policy = FixedHeadroom(128);
        let cfg = ServerConfig::fig8(requests, get_permille, 1);
        run_server(
            &mut bench.m,
            &bench.store,
            &mut bench.pool,
            &mut bench.port,
            &mut policy,
            &mut gens,
            &cfg,
        )
    }

    #[test]
    fn serves_all_requests() {
        let mut b = build(4096, Placement::Normal, 16);
        let rep = run(&mut b, 1000, 0.99, 2000);
        assert!(rep.served >= 2000);
        assert_eq!(rep.gets, rep.served, "100% GET workload");
        assert!(rep.tps > 0.0);
        assert!(rep.cycles_per_request > 0.0);
    }

    #[test]
    fn get_set_mix_hits_both_paths() {
        let mut b = build(4096, Placement::Normal, 16);
        let rep = run(&mut b, 500, 0.0, 2000);
        let frac = rep.gets as f64 / rep.served as f64;
        assert!((frac - 0.5).abs() < 0.06, "GET fraction {frac}");
    }

    #[test]
    fn set_then_get_roundtrips_through_packets() {
        // Functional check outside the closed loop: a SET followed by a
        // GET returns the stored bytes in the response payload.
        let mut b = build(256, Placement::Normal, 16);
        let core = 0;
        let mut policy = FixedHeadroom(128);
        b.port
            .refill(&mut b.m, &mut b.pool, 0, core, &mut policy, 8);
        let flow = trafficgen::FlowTuple::tcp(1, 2, 3, 4);
        let mut frame = vec![0u8; REQUEST_SIZE];
        // SET key 5 = 0x77s.
        nfv::packet::encode_frame(&mut frame, &flow, REQUEST_SIZE, 0.0, 0);
        write_request(
            &mut frame,
            &crate::proto::KvRequest {
                op: KvOp::Set,
                key: 5,
            },
        );
        frame[crate::proto::VALUE_OFF..crate::proto::VALUE_OFF + 64].fill(0x77);
        b.port.deliver(&mut b.m, &frame, &flow, 0.0).unwrap();
        let (batch, _) = b.port.rx_burst(&mut b.m, &b.pool, 0, core, 4);
        let comp = batch[0];
        let mut data = [0u8; 64];
        b.m.read_bytes(
            core,
            comp.data_pa.add(crate::proto::VALUE_OFF as u64),
            &mut data,
        );
        b.store.set(&mut b.m, core, 5, &data);
        b.pool.put(comp.mbuf);
        let mut out = [0u8; 64];
        b.store.get(&mut b.m, core, 5, &mut out);
        assert_eq!(out, [0x77u8; 64]);
    }

    #[test]
    fn faulty_client_degrades_gracefully() {
        use rte::fault::Window;
        let mut b = build(4096, Placement::Normal, 16);
        let n = b.store.len() as u64;
        let keygen = ZipfGen::new(n, 0.99, 99);
        let mut gens = [RequestGen::new(keygen, 500, 7)];
        let mut policy = FixedHeadroom(128);
        let cfg = ServerConfig::fig8(2000, 500, 1).with_faults(
            FaultPlan::frame_indexed()
                .with_seed(3)
                .with_corrupt_prob(0.10)
                .with_truncate_prob(0.05)
                .with_link_flap(Window::new(100, 150)),
        );
        let rep = run_server(
            &mut b.m,
            &b.store,
            &mut b.pool,
            &mut b.port,
            &mut policy,
            &mut gens,
            &cfg,
        );
        // Despite the lossy client, the server still reaches its target
        // and every offered request is accounted for (the conservation
        // assert inside run_server already enforced it; restate here).
        assert!(rep.served >= 2000, "served {}", rep.served);
        assert!(
            rep.drops.nic.crc > 0,
            "corruption must surface as CRC drops"
        );
        assert_eq!(rep.drops.nic.link_down, 50, "flap window covers 50 frames");
        assert!(rep.drops.truncated > 0, "mid-length cuts reach the parser");
        assert_eq!(
            rep.offered + rep.carried,
            rep.served + rep.drops.total() + rep.in_flight,
            "conservation restated from the report"
        );
    }

    #[test]
    fn four_core_queue_reports_partition_the_aggregate() {
        // The §8 multi-core extension: four serving cores, RSS over four
        // queues, each core's key class homed in its closest slice. The
        // per-queue reports must partition every aggregate counter
        // exactly.
        let cores = 4;
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
        let region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        let slices: Vec<usize> = (0..cores).map(|c| m.closest_slice(c)).collect();
        let store =
            KvStore::build(&mut m, &mut alloc, 4096, Placement::Striped { slices }).unwrap();
        let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
        let mut port = Port::new(0, Steering::Rss(Rss::new(cores)), 256);
        let base = trafficgen::FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
        let mut gens: Vec<RequestGen> = (0..cores)
            .map(|q| {
                let flow = flow_for_queue(&mut port, base, q);
                let keygen = ZipfGen::new(4096 / cores as u64, 0.99, 11 + q as u64);
                RequestGen::new(keygen, 900, 7 + q as u64)
                    .with_flow(flow)
                    .with_key_partition(cores as u32, q as u32)
            })
            .collect();
        let mut policy = FixedHeadroom(128);
        let cfg = ServerConfig::fig8(8000, 900, 1).with_cores(cores);
        let rep = run_server(
            &mut m,
            &store,
            &mut pool,
            &mut port,
            &mut policy,
            &mut gens,
            &cfg,
        );
        assert!(rep.served >= 8000, "served {}", rep.served);
        assert_eq!(rep.per_queue.len(), cores);
        assert_partitions(&rep);
        // Striped has no hot area: nothing is monitored or migrated.
        assert_eq!(rep.hot_hits, 0);
        assert_eq!(rep.migrated, 0);
        assert_eq!(rep.migration_cycles, 0);
    }

    /// Asserts every per-queue counter — including the migration ledger
    /// columns — sums exactly to its aggregate, and per-queue
    /// conservation holds.
    fn assert_partitions(rep: &ServerReport) {
        let (mut off, mut car, mut srv, mut gets, mut inf, mut drp) = (0, 0, 0, 0, 0, 0);
        let (mut hh, mut mig, mut mcyc) = (0, 0, 0);
        let (mut veto, mut defer, mut loss) = (0, 0, 0);
        for qr in &rep.per_queue {
            assert!(qr.served > 0, "queue {} served nothing", qr.queue);
            assert!(qr.busy_cycles > 0 && qr.tps > 0.0, "queue {}", qr.queue);
            assert_eq!(
                qr.offered + qr.carried,
                qr.served + qr.drops.total() + qr.in_flight,
                "queue {} conservation",
                qr.queue
            );
            assert!(
                qr.hot_hits <= qr.served,
                "queue {}: hot hits beyond served",
                qr.queue
            );
            assert!(
                qr.migration_cycles <= qr.busy_cycles,
                "queue {}: migration cycles beyond busy time",
                qr.queue
            );
            off += qr.offered;
            car += qr.carried;
            srv += qr.served;
            gets += qr.gets;
            inf += qr.in_flight;
            drp += qr.drops.total();
            hh += qr.hot_hits;
            mig += qr.migrated;
            mcyc += qr.migration_cycles;
            veto += qr.swaps_vetoed;
            defer += qr.swaps_deferred;
            loss += qr.swaps_at_loss;
        }
        assert_eq!(off, rep.offered, "offered must partition");
        assert_eq!(car, rep.carried, "carried must partition");
        assert_eq!(srv, rep.served, "served must partition");
        assert_eq!(gets, rep.gets, "gets must partition");
        assert_eq!(inf, rep.in_flight, "in_flight must partition");
        assert_eq!(drp, rep.drops.total(), "drops must partition");
        assert_eq!(hh, rep.hot_hits, "hot_hits must partition");
        assert_eq!(mig, rep.migrated, "migrated must partition");
        assert_eq!(
            mcyc, rep.migration_cycles,
            "migration_cycles must partition"
        );
        assert_eq!(veto, rep.swaps_vetoed, "swaps_vetoed must partition");
        assert_eq!(defer, rep.swaps_deferred, "swaps_deferred must partition");
        assert_eq!(loss, rep.swaps_at_loss, "swaps_at_loss must partition");
    }

    /// Four-core StripedHot run: Zipf clients with scrambled keys so
    /// the popular set starts cold. Returns the report.
    fn run_striped_hot(requests: usize, migration: MigrationMode) -> ServerReport {
        let cores = 4;
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
        let region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        let slices: Vec<usize> = (0..cores).map(|c| m.closest_slice(c)).collect();
        let store = KvStore::build(
            &mut m,
            &mut alloc,
            4096,
            Placement::StripedHot {
                slices,
                hot_per_core: 64,
            },
        )
        .unwrap();
        let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
        let mut port = Port::new(0, Steering::Rss(Rss::new(cores)), 256);
        let base = trafficgen::FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
        let mut gens: Vec<RequestGen> = (0..cores)
            .map(|q| {
                let flow = flow_for_queue(&mut port, base, q);
                let keygen = ZipfGen::new(4096 / cores as u64, 0.99, 11 + q as u64);
                RequestGen::new(keygen, 900, 7 + q as u64)
                    .with_flow(flow)
                    .with_key_partition(cores as u32, q as u32)
                    .with_key_scramble(21 + q as u64)
            })
            .collect();
        let mut policy = FixedHeadroom(128);
        let mut cfg = ServerConfig::fig8(requests, 900, 1).with_cores(cores);
        cfg.migration = migration;
        run_server(
            &mut m,
            &store,
            &mut pool,
            &mut port,
            &mut policy,
            &mut gens,
            &cfg,
        )
    }

    #[test]
    fn migration_lifts_hot_hit_rate_and_the_ledger_partitions() {
        let baseline = run_striped_hot(12_000, MigrationMode::Off);
        let migrated = run_striped_hot(12_000, MigrationMode::Always { epoch: 1000 });
        // Monitor-only: counters tick, nothing moves.
        assert!(
            baseline.hot_hits > 0,
            "scrambled Zipf still grazes hot slots"
        );
        assert_eq!(baseline.migrated, 0);
        assert_eq!(baseline.migration_cycles, 0);
        assert_eq!(baseline.swaps_vetoed, 0);
        // Migrating: every core promoted keys, paid timed cycles for
        // it, and the per-queue ledger partitions the new columns.
        assert_partitions(&migrated);
        for qr in &migrated.per_queue {
            assert!(qr.migrated > 0, "queue {} never migrated", qr.queue);
            assert!(
                qr.migration_cycles > 0,
                "queue {} swaps were free",
                qr.queue
            );
        }
        // Always never vetoes or defers, but the measured economics
        // flag its uneconomic tail swaps.
        assert_eq!(migrated.swaps_vetoed, 0);
        assert_eq!(migrated.swaps_deferred, 0);
        assert!(
            migrated.swaps_at_loss > 0,
            "a Zipf tail must produce at-loss swaps under Always"
        );
        assert!(
            migrated.hot_hit_rate() > baseline.hot_hit_rate(),
            "migration must lift the hot-hit rate: {} vs {}",
            migrated.hot_hit_rate(),
            baseline.hot_hit_rate()
        );
    }

    #[test]
    fn cost_aware_migration_vetoes_the_tail_and_never_swaps_at_a_loss() {
        let aware = run_striped_hot(12_000, MigrationMode::CostAware { epoch: 1000 });
        assert_partitions(&aware);
        assert!(aware.migrated > 0, "the Zipf head must still migrate");
        assert_eq!(
            aware.swaps_at_loss, 0,
            "cost-aware migration must never execute an at-loss swap"
        );
        assert!(
            aware.swaps_vetoed > 0,
            "the Zipf tail must be vetoed by the economics"
        );
        // The controller migrates a strict subset of what Always moves.
        let always = run_striped_hot(12_000, MigrationMode::Always { epoch: 1000 });
        assert!(
            aware.migrated < always.migrated,
            "cost-aware ({}) must swap less than Always ({})",
            aware.migrated,
            always.migrated
        );
    }

    #[test]
    fn uniform_traffic_server_backs_off_to_zero_swaps() {
        // Stationary uniform clients on a migrating StripedHot server:
        // the controller must veto everything, back off, and report
        // zero executed swaps — the server-level half of the dormancy
        // acceptance criterion.
        let cores = 4;
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
        let region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        let slices: Vec<usize> = (0..cores).map(|c| m.closest_slice(c)).collect();
        let store = KvStore::build(
            &mut m,
            &mut alloc,
            4096,
            Placement::StripedHot {
                slices,
                hot_per_core: 64,
            },
        )
        .unwrap();
        let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
        let mut port = Port::new(0, Steering::Rss(Rss::new(cores)), 256);
        let base = trafficgen::FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
        let mut gens: Vec<RequestGen> = (0..cores)
            .map(|q| {
                let flow = flow_for_queue(&mut port, base, q);
                // theta = 0: stationary uniform keys.
                let keygen = ZipfGen::new(4096 / cores as u64, 0.0, 11 + q as u64);
                RequestGen::new(keygen, 900, 7 + q as u64)
                    .with_flow(flow)
                    .with_key_partition(cores as u32, q as u32)
            })
            .collect();
        let mut policy = FixedHeadroom(128);
        let mut cfg = ServerConfig::fig8(16_000, 900, 1).with_cores(cores);
        cfg.migration = MigrationMode::CostAware { epoch: 500 };
        let rep = run_server(
            &mut m,
            &store,
            &mut pool,
            &mut port,
            &mut policy,
            &mut gens,
            &cfg,
        );
        assert_partitions(&rep);
        assert_eq!(rep.migrated, 0, "uniform traffic must never migrate");
        assert_eq!(rep.migration_cycles, 0);
        assert_eq!(rep.swaps_at_loss, 0);
    }

    #[test]
    #[should_panic(expected = "migration needs one hot area per serving core")]
    fn migration_rejects_placements_without_a_hot_area() {
        let mut b = build(4096, Placement::Normal, 16);
        let keygen = ZipfGen::new(4096, 0.99, 99);
        let mut gens = [RequestGen::new(keygen, 1000, 7)];
        let mut policy = FixedHeadroom(128);
        let cfg = ServerConfig::fig8(100, 1000, 1).with_migration(64);
        run_server(
            &mut b.m,
            &b.store,
            &mut b.pool,
            &mut b.port,
            &mut policy,
            &mut gens,
            &cfg,
        );
    }

    #[test]
    fn skewed_slice_aware_beats_normal() {
        // The Fig. 8 headline at small scale: value store larger than the
        // LLC, Zipf keys, 100% GET.
        let n = 1 << 19; // 512k values = 32 MB > 20 MB LLC.
        let mut aware = build(n, Placement::SliceAware { slice: 0 }, 384);
        let mut normal = build(n, Placement::Normal, 384);
        let warm = 40_000;
        let measured = 60_000;
        let _ = run(&mut aware, 1000, 0.99, warm);
        let _ = run(&mut normal, 1000, 0.99, warm);
        let ra = run(&mut aware, 1000, 0.99, measured);
        let rn = run(&mut normal, 1000, 0.99, measured);
        assert!(
            ra.tps > rn.tps,
            "slice-aware TPS {} must beat normal {}",
            ra.tps,
            rn.tps
        );
    }

    #[test]
    fn uniform_keys_show_no_meaningful_gap() {
        let n = 1 << 19;
        let mut aware = build(n, Placement::SliceAware { slice: 0 }, 384);
        let mut normal = build(n, Placement::Normal, 384);
        let ra = run(&mut aware, 1000, 0.0, 30_000);
        let rn = run(&mut normal, 1000, 0.0, 30_000);
        let gap = (ra.tps - rn.tps).abs() / rn.tps;
        assert!(gap < 0.05, "uniform gap {gap} should be small");
    }
}
