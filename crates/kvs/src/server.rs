//! The single-core KVS server loop and its throughput measurement.
//!
//! Fig. 8 measures server-side transactions per second with the client
//! saturating the server ("a client sends requests ... at high rate to
//! stress the server. We measured the performance ... on the server side
//! so that we could ignore the networking bottlenecks"). The server here
//! runs closed-loop: the NIC queue is kept stocked with requests and TPS
//! is requests served over the serving core's busy time.

use crate::proto::{read_request, write_request, KvOp, RequestGen, REQUEST_SIZE, VALUE_OFF};
use crate::store::KvStore;
use llc_sim::machine::Machine;
use rte::fault::{FaultPlan, FaultState};
use rte::mempool::MbufPool;
use rte::nic::{DropReason, HeadroomPolicy, Port, TxDesc};

/// Frame offset where the KVS payload begins (after Ethernet/IPv4/TCP).
pub const PAYLOAD_OFF: usize = 54;

/// Per-request server work besides store access: RX bookkeeping, request
/// parse, response assembly. Calibrated so the all-cached request path
/// lands near the paper's ~160-cycle figure (§3.1).
pub const SERVE_WORK: u64 = 15;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Serving core.
    pub core: usize,
    /// Requests to serve.
    pub requests: usize,
    /// PMD burst size.
    pub burst: usize,
    /// RX descriptor ring depth.
    pub queue_depth: usize,
    /// GET ratio in permille (1000 = 100 % GET).
    pub get_permille: u32,
    /// RNG seed.
    pub seed: u64,
    /// Fault-injection plan applied to offered requests.
    pub faults: FaultPlan,
}

impl ServerConfig {
    /// Fig. 8 defaults: core 0, bursts of 32, no faults.
    pub fn fig8(requests: usize, get_permille: u32, seed: u64) -> Self {
        Self {
            core: 0,
            requests,
            burst: 32,
            queue_depth: 256,
            get_permille,
            seed,
            faults: FaultPlan::none(),
        }
    }

    /// The same configuration with a fault plan applied.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }
}

/// Per-cause drop accounting for a server run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerDrops {
    /// Requests lost to frame corruption or runt truncation (NIC CRC).
    pub crc: u64,
    /// Requests lost while the link was down.
    pub link_down: u64,
    /// Requests lost while the RX engine was stalled.
    pub rx_stall: u64,
    /// Requests dropped for lack of RX descriptors (ring, not pool).
    pub nodesc: u64,
    /// Requests dropped because the mbuf pool was exhausted or in outage.
    pub pool_starved: u64,
    /// Requests dropped by the NIC packet-rate ceiling.
    pub overrun: u64,
    /// Requests delivered but rejected by the parser (bad opcode).
    pub malformed: u64,
    /// Requests delivered but too short to carry opcode/key/value.
    pub truncated: u64,
}

impl ServerDrops {
    /// Every request dropped, across all causes.
    pub fn total(&self) -> u64 {
        self.crc
            + self.link_down
            + self.rx_stall
            + self.nodesc
            + self.pool_starved
            + self.overrun
            + self.malformed
            + self.truncated
    }
}

impl std::fmt::Display for ServerDrops {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crc={} link_down={} rx_stall={} nodesc={} pool_starved={} \
             overrun={} malformed={} truncated={}",
            self.crc,
            self.link_down,
            self.rx_stall,
            self.nodesc,
            self.pool_starved,
            self.overrun,
            self.malformed,
            self.truncated
        )
    }
}

/// What a server run reports.
#[derive(Debug, Clone, Copy)]
pub struct ServerReport {
    /// Requests the client offered this run.
    pub offered: u64,
    /// Requests served.
    pub served: u64,
    /// GETs among them.
    pub gets: u64,
    /// Per-cause drop accounting (`offered + carried == served +
    /// drops.total() + in_flight` — asserted before this report is built).
    pub drops: ServerDrops,
    /// Requests still sitting in the RX ring when the run ended.
    pub in_flight: u64,
    /// Busy cycles on the serving core.
    pub busy_cycles: u64,
    /// Transactions per second at the machine's frequency.
    pub tps: f64,
    /// Mean cycles per request.
    pub cycles_per_request: f64,
}

/// Runs the closed-loop server benchmark.
///
/// `keygen` supplies the key distribution; requests are DMA-ed into mbufs
/// through the normal NIC path (DDIO), served from `store`, and responses
/// transmitted back.
pub fn run_server(
    m: &mut Machine,
    store: &mut KvStore,
    pool: &mut MbufPool,
    port: &mut Port,
    policy: &mut dyn HeadroomPolicy,
    gen: &mut RequestGen,
    cfg: &ServerConfig,
) -> ServerReport {
    let core = cfg.core;
    let mut frame = vec![0u8; REQUEST_SIZE];
    let mut value = [0u8; 64];
    let mut served = 0u64;
    let mut gets = 0u64;
    let mut faults = FaultState::new(cfg.faults.clone());
    let mut drops = ServerDrops::default();
    // Completions a previous run left in the ready ring: they are served
    // this run without being offered this run, so the conservation
    // invariant must carry them in.
    let carried = port.ready_count(0) as u64;
    // The RX ring's slots are shared by posted descriptors and any
    // completions left over from a previous run.
    let initial = cfg.queue_depth - port.ready_count(0);
    port.refill(m, pool, 0, core, policy, initial);
    let start = m.now(core);
    while (served as usize) < cfg.requests {
        // The client keeps the queue saturated (closed loop): top the
        // queue up with fresh requests before each poll. The attempt cap
        // bounds the loop when the fault plan rejects every frame (e.g.
        // a long stall window, where no offer consumes a descriptor).
        let mut attempts = 0;
        while port.posted_count(0) > 0 && attempts < 2 * cfg.queue_depth {
            attempts += 1;
            let req = gen.next_request();
            nfv::packet::encode_frame(&mut frame, &gen.flow(), REQUEST_SIZE, 0.0, served);
            write_request(&mut frame, &req);
            let fault = faults.next_frame();
            pool.set_outage(fault.pool_blocked);
            match port.deliver_faulty(m, &frame, &gen.flow(), 0.0, fault) {
                Ok(_) => {}
                Err(DropReason::NoDescriptor) => {
                    if pool.in_outage() || pool.available() == 0 {
                        drops.pool_starved += 1;
                    } else {
                        drops.nodesc += 1;
                    }
                    break;
                }
                Err(DropReason::Overrun) => drops.overrun += 1,
                Err(DropReason::CrcError) => drops.crc += 1,
                Err(DropReason::LinkDown) => drops.link_down += 1,
                Err(DropReason::RxStall) => drops.rx_stall += 1,
            }
        }
        let (batch, _c) = port.rx_burst(m, pool, 0, core, cfg.burst);
        if batch.is_empty() {
            break;
        }
        let mut tx = Vec::with_capacity(batch.len());
        for comp in &batch {
            // Parse the request: opcode + key live in the frame's first
            // 64 B line, the one CacheDirector places. Never read past
            // the (possibly truncated) frame.
            let wire_len = usize::from(comp.len);
            let mut req_bytes = [0u8; 64];
            let readable = wire_len.min(req_bytes.len());
            m.read_bytes(core, comp.data_pa, &mut req_bytes[..readable]);
            let Some(req) = read_request(&req_bytes[..readable]) else {
                if wire_len < crate::proto::KEY_OFF + 4 {
                    drops.truncated += 1;
                } else {
                    drops.malformed += 1;
                }
                pool.put(comp.mbuf);
                continue;
            };
            if req.op == KvOp::Set && wire_len < VALUE_OFF + 64 {
                // A SET whose value was cut off on the wire.
                drops.truncated += 1;
                pool.put(comp.mbuf);
                continue;
            }
            m.advance(core, SERVE_WORK);
            match req.op {
                KvOp::Get => {
                    store.get(m, core, req.key, &mut value);
                    // Write the value into the response payload.
                    m.write_bytes(core, comp.data_pa.add(PAYLOAD_OFF as u64 + 6), &value);
                    gets += 1;
                }
                KvOp::Set => {
                    let mut data = [0u8; 64];
                    m.read_bytes(core, comp.data_pa.add(VALUE_OFF as u64), &mut data);
                    store.set(m, core, req.key, &data);
                }
            }
            served += 1;
            tx.push(TxDesc {
                mbuf: comp.mbuf,
                data_pa: comp.data_pa,
                len: comp.len,
            });
        }
        port.tx_burst(m, pool, core, &tx);
        let free = cfg.queue_depth - port.ready_count(0);
        port.refill(m, pool, 0, core, policy, free);
    }
    // Leave the pool usable for whoever runs next on this machine.
    pool.set_outage(false);
    let offered = faults.frame_index();
    let in_flight = port.ready_count(0) as u64;
    assert_eq!(
        offered + carried,
        served + drops.total() + in_flight,
        "request conservation: offered {offered} + carried {carried} != served {served} \
         + drops [{drops}] + in_flight {in_flight}"
    );
    let busy_cycles = m.now(core) - start;
    let tps = if busy_cycles == 0 {
        0.0
    } else {
        served as f64 / (busy_cycles as f64 / (m.config().freq_ghz * 1e9))
    };
    ServerReport {
        offered,
        served,
        gets,
        drops,
        in_flight,
        busy_cycles,
        tps,
        cycles_per_request: if served == 0 {
            0.0
        } else {
            busy_cycles as f64 / served as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Placement;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::MachineConfig;
    use rte::nic::FixedHeadroom;
    use rte::steering::{Rss, Steering};
    use slice_aware::alloc::SliceAllocator;
    use trafficgen::ZipfGen;

    struct Bench {
        m: Machine,
        store: KvStore,
        pool: MbufPool,
        port: Port,
    }

    fn build(n: usize, placement: Placement, region_mb: usize) -> Bench {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
        let region = m.mem_mut().alloc(region_mb << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        let store = KvStore::build(&mut m, &mut alloc, n, placement).unwrap();
        let pool = MbufPool::create(&mut m, 1024, 128, 2048).unwrap();
        let port = Port::new(0, Steering::Rss(Rss::new(1)), 256);
        Bench {
            m,
            store,
            pool,
            port,
        }
    }

    fn run(bench: &mut Bench, get_permille: u32, theta: f64, requests: usize) -> ServerReport {
        let n = bench.store.len() as u64;
        let keygen = ZipfGen::new(n, theta, 99);
        let mut gen = RequestGen::new(keygen, get_permille, 7);
        let mut policy = FixedHeadroom(128);
        let cfg = ServerConfig::fig8(requests, get_permille, 1);
        run_server(
            &mut bench.m,
            &mut bench.store,
            &mut bench.pool,
            &mut bench.port,
            &mut policy,
            &mut gen,
            &cfg,
        )
    }

    #[test]
    fn serves_all_requests() {
        let mut b = build(4096, Placement::Normal, 16);
        let rep = run(&mut b, 1000, 0.99, 2000);
        assert!(rep.served >= 2000);
        assert_eq!(rep.gets, rep.served, "100% GET workload");
        assert!(rep.tps > 0.0);
        assert!(rep.cycles_per_request > 0.0);
    }

    #[test]
    fn get_set_mix_hits_both_paths() {
        let mut b = build(4096, Placement::Normal, 16);
        let rep = run(&mut b, 500, 0.0, 2000);
        let frac = rep.gets as f64 / rep.served as f64;
        assert!((frac - 0.5).abs() < 0.06, "GET fraction {frac}");
    }

    #[test]
    fn set_then_get_roundtrips_through_packets() {
        // Functional check outside the closed loop: a SET followed by a
        // GET returns the stored bytes in the response payload.
        let mut b = build(256, Placement::Normal, 16);
        let core = 0;
        let mut policy = FixedHeadroom(128);
        b.port
            .refill(&mut b.m, &mut b.pool, 0, core, &mut policy, 8);
        let flow = trafficgen::FlowTuple::tcp(1, 2, 3, 4);
        let mut frame = vec![0u8; REQUEST_SIZE];
        // SET key 5 = 0x77s.
        nfv::packet::encode_frame(&mut frame, &flow, REQUEST_SIZE, 0.0, 0);
        write_request(
            &mut frame,
            &crate::proto::KvRequest {
                op: KvOp::Set,
                key: 5,
            },
        );
        frame[crate::proto::VALUE_OFF..crate::proto::VALUE_OFF + 64].fill(0x77);
        b.port.deliver(&mut b.m, &frame, &flow, 0.0).unwrap();
        let (batch, _) = b.port.rx_burst(&mut b.m, &b.pool, 0, core, 4);
        let comp = batch[0];
        let mut data = [0u8; 64];
        b.m.read_bytes(
            core,
            comp.data_pa.add(crate::proto::VALUE_OFF as u64),
            &mut data,
        );
        b.store.set(&mut b.m, core, 5, &data);
        b.pool.put(comp.mbuf);
        let mut out = [0u8; 64];
        b.store.get(&mut b.m, core, 5, &mut out);
        assert_eq!(out, [0x77u8; 64]);
    }

    #[test]
    fn faulty_client_degrades_gracefully() {
        use rte::fault::Window;
        let mut b = build(4096, Placement::Normal, 16);
        let n = b.store.len() as u64;
        let keygen = ZipfGen::new(n, 0.99, 99);
        let mut gen = RequestGen::new(keygen, 500, 7);
        let mut policy = FixedHeadroom(128);
        let cfg = ServerConfig::fig8(2000, 500, 1).with_faults(
            FaultPlan::none()
                .with_seed(3)
                .with_corrupt_prob(0.10)
                .with_truncate_prob(0.05)
                .with_link_flap(Window::new(100, 150)),
        );
        let rep = run_server(
            &mut b.m,
            &mut b.store,
            &mut b.pool,
            &mut b.port,
            &mut policy,
            &mut gen,
            &cfg,
        );
        // Despite the lossy client, the server still reaches its target
        // and every offered request is accounted for (the conservation
        // assert inside run_server already enforced it; restate here).
        assert!(rep.served >= 2000, "served {}", rep.served);
        assert!(rep.drops.crc > 0, "corruption must surface as CRC drops");
        assert_eq!(rep.drops.link_down, 50, "flap window covers 50 frames");
        assert!(rep.drops.truncated > 0, "mid-length cuts reach the parser");
        assert_eq!(
            rep.offered,
            rep.served + rep.drops.total() + rep.in_flight,
            "conservation restated from the report"
        );
    }

    #[test]
    fn skewed_slice_aware_beats_normal() {
        // The Fig. 8 headline at small scale: value store larger than the
        // LLC, Zipf keys, 100% GET.
        let n = 1 << 19; // 512k values = 32 MB > 20 MB LLC.
        let mut aware = build(n, Placement::SliceAware { slice: 0 }, 384);
        let mut normal = build(n, Placement::Normal, 384);
        let warm = 40_000;
        let measured = 60_000;
        let _ = run(&mut aware, 1000, 0.99, warm);
        let _ = run(&mut normal, 1000, 0.99, warm);
        let ra = run(&mut aware, 1000, 0.99, measured);
        let rn = run(&mut normal, 1000, 0.99, measured);
        assert!(
            ra.tps > rn.tps,
            "slice-aware TPS {} must beat normal {}",
            ra.tps,
            rn.tps
        );
    }

    #[test]
    fn uniform_keys_show_no_meaningful_gap() {
        let n = 1 << 19;
        let mut aware = build(n, Placement::SliceAware { slice: 0 }, 384);
        let mut normal = build(n, Placement::Normal, 384);
        let ra = run(&mut aware, 1000, 0.0, 30_000);
        let rn = run(&mut normal, 1000, 0.0, 30_000);
        let gap = (ra.tps - rn.tps).abs() / rn.tps;
        assert!(gap < 0.05, "uniform gap {gap} should be small");
    }
}
