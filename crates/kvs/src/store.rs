//! The value store: index array + 64 B value slots.

use llc_sim::addr::PhysAddr;
use llc_sim::epoch::CoreMem;
use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;
use llc_sim::mem::Region;
use llc_sim::CACHE_LINE;
use slice_aware::alloc::{AllocError, SliceAllocator, SliceBuffer};

/// Where value slots are placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Contiguous allocation: values spread over all slices (baseline).
    Normal,
    /// Every value slot maps to `slice` (the serving core's closest).
    SliceAware {
        /// Target slice.
        slice: usize,
    },
    /// Only the hottest `hot_count` slots (the lowest key ranks) map to
    /// `slice`; the rest are contiguous. This is the §8 refinement for
    /// stores larger than a slice ("applications which only use
    /// slice-aware memory management for the 'hot' data"): it keeps the
    /// latency advantage for the popular keys without forfeiting the
    /// other slices' capacity for the long tail.
    HotSliceAware {
        /// Target slice for the hot set.
        slice: usize,
        /// Number of hot slots (≈ half a slice's lines is a good fit).
        hot_count: usize,
    },
    /// Slot `k` maps to `slices[k % slices.len()]`: the multi-queue
    /// server's per-core partition (§8 applied across cores). Core *i*
    /// of *N* serves the key class `k ≡ i (mod N)`, so giving
    /// `slices[i] = closest_slice(i)` homes every value a core serves
    /// in that core's closest slice.
    Striped {
        /// One target slice per serving core, in core order.
        slices: Vec<usize>,
    },
    /// The composition of §8's two refinements: the per-core residue
    /// partition of [`Placement::Striped`] *and* the hot/cold split of
    /// [`Placement::HotSliceAware`]. Core *i* of *N* still owns the key
    /// class `k ≡ i (mod N)` (so concurrent workers' SETs stay
    /// disjoint), but only the class's *hot area* — its first
    /// `hot_per_core` slots — is pinned to `slices[i]`, the core's
    /// closest slice. The cold tail is allocated contiguously and
    /// spreads over every slice, so a store much larger than one slice
    /// keeps the whole LLC's capacity for its long tail instead of
    /// confining each class to one slice's worth of sets.
    ///
    /// The hot slots are the migration target of
    /// [`crate::migrate::HotMigrator`]: at epoch boundaries the
    /// observed-hot keys of each class are swapped into that class's
    /// hot area.
    StripedHot {
        /// One target slice per serving core, in core order.
        slices: Vec<usize>,
        /// Hot (slice-local) slots per core's class.
        hot_per_core: usize,
    },
}

impl Placement {
    /// The hot (slice-local, migration-target) slot numbers `core` owns
    /// under this placement in a store of `n` slots, or `None` when the
    /// placement has no hot area (or none for that core).
    pub fn hot_slots(&self, core: usize, n: usize) -> Option<Vec<usize>> {
        match self {
            Placement::HotSliceAware { hot_count, .. } => {
                // Single-queue placement: one hot area, whichever core
                // serves the store.
                Some((0..(*hot_count).min(n)).collect())
            }
            Placement::StripedHot {
                slices,
                hot_per_core,
            } => {
                let stride = slices.len();
                if core >= stride {
                    return None;
                }
                Some(
                    (0..*hot_per_core)
                        .map(|j| j * stride + core)
                        .take_while(|&k| k < n)
                        .collect(),
                )
            }
            Placement::Normal | Placement::SliceAware { .. } | Placement::Striped { .. } => None,
        }
    }

    /// True when this placement declares a hot area somewhere.
    pub fn has_hot_area(&self) -> bool {
        matches!(
            self,
            Placement::HotSliceAware { .. } | Placement::StripedHot { .. }
        )
    }
}

/// The emulated store.
#[derive(Debug)]
pub struct KvStore {
    /// One 64 B line per value.
    slots: SliceBuffer,
    /// Direct-mapped index: `n` little-endian u32 slot numbers in
    /// simulated memory (contiguous in both modes).
    index: Region,
    placement: Placement,
}

/// Per-operation fixed work: request dispatch, bounds checks, response
/// bookkeeping.
pub const OP_WORK: Cycles = 20;

impl KvStore {
    /// Builds a store of `n` values placed per `placement`.
    ///
    /// The index is initialised to the identity permutation (slot *k*
    /// holds key *k*'s value), which mirrors the paper's key range
    /// `[0, 2^24)`.
    pub fn build<F: FnMut(PhysAddr) -> usize>(
        m: &mut Machine,
        alloc: &mut SliceAllocator<F>,
        n: usize,
        placement: Placement,
    ) -> Result<Self, BuildError> {
        let slots = match &placement {
            Placement::Normal => alloc.alloc_contiguous_lines(n)?,
            Placement::SliceAware { slice } => alloc.alloc_lines_exclusive(*slice, n)?,
            Placement::HotSliceAware { slice, hot_count } => {
                let hot = (*hot_count).min(n);
                let mut lines = alloc.alloc_lines(*slice, hot)?.lines().to_vec();
                lines.extend_from_slice(alloc.alloc_contiguous_lines(n - hot)?.lines());
                SliceBuffer::from_lines(lines)
            }
            Placement::Striped { slices } => {
                assert!(!slices.is_empty(), "striped placement needs a slice list");
                let s = slices.len();
                // Per-residue line pools: class r holds the slots
                // k ∈ [0, n) with k ≡ r (mod s).
                let mut per: Vec<std::vec::IntoIter<PhysAddr>> = Vec::with_capacity(s);
                for (r, &slice) in slices.iter().enumerate() {
                    let count = if r < n { (n - r).div_ceil(s) } else { 0 };
                    per.push(
                        alloc
                            .alloc_lines(slice, count)?
                            .lines()
                            .to_vec()
                            .into_iter(),
                    );
                }
                let mut lines = Vec::with_capacity(n);
                for k in 0..n {
                    lines.push(per[k % s].next().expect("pool sized per residue"));
                }
                SliceBuffer::from_lines(lines)
            }
            Placement::StripedHot {
                slices,
                hot_per_core,
            } => {
                assert!(
                    !slices.is_empty(),
                    "striped-hot placement needs a slice list"
                );
                assert!(*hot_per_core > 0, "striped-hot placement needs a hot area");
                let s = slices.len();
                // Hot area of class r: its first `hot_per_core` slots,
                // pinned to slices[r].
                let mut hot: Vec<std::vec::IntoIter<PhysAddr>> = Vec::with_capacity(s);
                let mut hot_total = 0usize;
                for (r, &slice) in slices.iter().enumerate() {
                    let class_len = if r < n { (n - r).div_ceil(s) } else { 0 };
                    let count = (*hot_per_core).min(class_len);
                    hot_total += count;
                    hot.push(
                        alloc
                            .alloc_lines(slice, count)?
                            .lines()
                            .to_vec()
                            .into_iter(),
                    );
                }
                // Cold tail: contiguous, spreading over every slice so
                // the long tail keeps the whole LLC's capacity.
                let mut cold = alloc
                    .alloc_contiguous_lines(n - hot_total)?
                    .lines()
                    .to_vec()
                    .into_iter();
                let mut lines = Vec::with_capacity(n);
                for k in 0..n {
                    if k / s < *hot_per_core {
                        lines.push(hot[k % s].next().expect("pool sized per hot class"));
                    } else {
                        lines.push(cold.next().expect("cold pool sized to the tail"));
                    }
                }
                SliceBuffer::from_lines(lines)
            }
        };
        let index = m
            .mem_mut()
            .alloc(n * 4, CACHE_LINE)
            .map_err(BuildError::Mem)?;
        for k in 0..n {
            m.mem_mut()
                .write(index.pa(k * 4), &(k as u32).to_le_bytes());
        }
        Ok(Self {
            slots,
            index,
            placement,
        })
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True for an empty store.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The configured placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The hot (slice-local, migration-target) slots `core` owns, or
    /// `None` when the placement has no hot area for that core. See
    /// [`Placement::hot_slots`].
    pub fn hot_slots(&self, core: usize) -> Option<Vec<usize>> {
        self.placement.hot_slots(core, self.len())
    }

    /// True when the placement declares a hot area.
    pub fn has_hot_area(&self) -> bool {
        self.placement.has_hot_area()
    }

    /// The keys currently homed in `slots`, in slot order — the store's
    /// *actual* resident layout, read from the live index with one
    /// untimed scan. [`crate::migrate::HotMigrator::for_store`] uses
    /// this instead of assuming the identity layout, so a store that
    /// has already been migrated (or striped) is described faithfully.
    ///
    /// # Panics
    ///
    /// Panics when a requested slot is out of range or unoccupied (the
    /// index is a permutation, so every in-range slot has exactly one
    /// key).
    pub fn residents(&self, m: &Machine, slots: &[usize]) -> Vec<u32> {
        let n = self.len();
        let mut want: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::with_capacity(slots.len());
        for (i, &s) in slots.iter().enumerate() {
            assert!(s < n, "hot slot {s} out of range");
            want.insert(s, i);
        }
        let mut out = vec![u32::MAX; slots.len()];
        let mut found = 0usize;
        let mut b = [0u8; 4];
        for key in 0..n {
            m.mem().read(self.index.pa(key * 4), &mut b);
            let slot = u32::from_le_bytes(b) as usize;
            if let Some(&i) = want.get(&slot) {
                out[i] = key as u32;
                found += 1;
                if found == slots.len() {
                    break;
                }
            }
        }
        assert_eq!(found, slots.len(), "index must cover every hot slot");
        out
    }

    /// Timed index lookup: one memory access into the index array.
    fn slot_of<M: CoreMem + ?Sized>(&self, m: &mut M, core: usize, key: u32) -> (usize, Cycles) {
        let mut b = [0u8; 4];
        let c = m.read_bytes(core, self.index.pa(key as usize * 4), &mut b);
        (u32::from_le_bytes(b) as usize, c)
    }

    /// GET: index lookup + 64 B value read into `out`.
    ///
    /// Generic over [`CoreMem`] so it can run against a per-worker
    /// machine shard during engine epochs as well as a whole
    /// [`Machine`].
    ///
    /// # Panics
    ///
    /// Panics when `key` is out of range or `out` is shorter than 64 B.
    pub fn get<M: CoreMem + ?Sized>(
        &self,
        m: &mut M,
        core: usize,
        key: u32,
        out: &mut [u8],
    ) -> Cycles {
        assert!((key as usize) < self.len(), "key out of range");
        let (slot, mut cycles) = self.slot_of(m, core, key);
        cycles += m.read_bytes(core, self.slots.line(slot), &mut out[..CACHE_LINE]);
        m.advance(core, OP_WORK);
        cycles + OP_WORK
    }

    /// SET: index lookup + 64 B value write.
    ///
    /// Takes `&self`: the mutation lives entirely in simulated memory
    /// (behind `m`), so concurrent workers may share one store as long
    /// as their key classes are disjoint — the multi-queue partition of
    /// §8, and the [`llc_sim::epoch::SharedMem`] write-disjointness
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics when `key` is out of range or `data` is shorter than 64 B.
    pub fn set<M: CoreMem + ?Sized>(
        &self,
        m: &mut M,
        core: usize,
        key: u32,
        data: &[u8],
    ) -> Cycles {
        assert!((key as usize) < self.len(), "key out of range");
        let (slot, mut cycles) = self.slot_of(m, core, key);
        cycles += m.write_bytes(core, self.slots.line(slot), &data[..CACHE_LINE]);
        m.advance(core, OP_WORK);
        cycles + OP_WORK
    }

    /// The physical address of `key`'s value (inspection).
    pub fn value_pa(&self, m: &mut Machine, key: u32) -> PhysAddr {
        let mut b = [0u8; 4];
        m.mem().read(self.index.pa(key as usize * 4), &mut b);
        self.slots.line(u32::from_le_bytes(b) as usize)
    }

    /// Exchanges the storage homes of two keys: swaps their 64 B values
    /// and their index entries, all timed on `core`. The migration
    /// primitive of [`crate::migrate`] (paper §8): swapping a hot key
    /// with a hot-slot occupant moves the hot value into the slice-local
    /// area.
    ///
    /// `a == b` is a free no-op (`Ok(0)`, no cycles charged); a key
    /// outside the store is a typed [`SwapError`], with no partial
    /// write and no cycles charged. Takes `&self` like [`KvStore::set`]:
    /// the mutation lives entirely in simulated memory. Index entries of
    /// different key classes share cache lines, so concurrent workers
    /// must NOT swap during engine epochs — the migration loop runs at
    /// the epoch merge, on the coordinator.
    pub fn swap_keys(
        &self,
        m: &mut Machine,
        core: usize,
        a: u32,
        b: u32,
    ) -> Result<Cycles, SwapError> {
        for key in [a, b] {
            if key as usize >= self.len() {
                return Err(SwapError::KeyOutOfRange {
                    key,
                    len: self.len(),
                });
            }
        }
        if a == b {
            return Ok(0);
        }
        let (slot_a, mut cycles) = self.slot_of(m, core, a);
        let (slot_b, c) = self.slot_of(m, core, b);
        cycles += c;
        // Swap the values.
        let mut va = [0u8; CACHE_LINE];
        let mut vb = [0u8; CACHE_LINE];
        cycles += m.read_bytes(core, self.slots.line(slot_a), &mut va);
        cycles += m.read_bytes(core, self.slots.line(slot_b), &mut vb);
        cycles += m.write_bytes(core, self.slots.line(slot_a), &vb);
        cycles += m.write_bytes(core, self.slots.line(slot_b), &va);
        // Swap the index entries.
        cycles += m.write_bytes(
            core,
            self.index.pa(a as usize * 4),
            &(slot_b as u32).to_le_bytes(),
        );
        cycles += m.write_bytes(
            core,
            self.index.pa(b as usize * 4),
            &(slot_a as u32).to_le_bytes(),
        );
        Ok(cycles)
    }
}

/// A rejected [`KvStore::swap_keys`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapError {
    /// One of the keys is outside the store.
    KeyOutOfRange {
        /// The offending key.
        key: u32,
        /// The store's size.
        len: usize,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::KeyOutOfRange { key, len } => {
                write!(f, "cannot swap key {key}: store holds {len} keys")
            }
        }
    }
}

impl std::error::Error for SwapError {}

/// Store construction failures.
#[derive(Debug)]
pub enum BuildError {
    /// Slice-aware carving failed.
    Alloc(AllocError),
    /// Index reservation failed.
    Mem(llc_sim::mem::MemError),
}

impl From<AllocError> for BuildError {
    fn from(e: AllocError) -> Self {
        BuildError::Alloc(e)
    }
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Alloc(e) => write!(f, "value allocation failed: {e}"),
            BuildError::Mem(e) => write!(f, "index allocation failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::MachineConfig;

    fn setup(region_mb: usize) -> (Machine, SliceAllocator<impl FnMut(PhysAddr) -> usize>) {
        let mut m = Machine::new(
            MachineConfig::haswell_e5_2667_v3().with_dram_capacity((region_mb * 3) << 20),
        );
        let r = m.mem_mut().alloc(region_mb << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        (m, SliceAllocator::new(r, move |pa| h.slice_of(pa)))
    }

    #[test]
    fn get_returns_what_set_stored() {
        let (mut m, mut a) = setup(16);
        let kv = KvStore::build(&mut m, &mut a, 1024, Placement::Normal).unwrap();
        let value = [0xabu8; 64];
        kv.set(&mut m, 0, 42, &value);
        let mut out = [0u8; 64];
        kv.get(&mut m, 0, 42, &mut out);
        assert_eq!(out, value);
    }

    #[test]
    fn slice_aware_values_all_in_target_slice() {
        let (mut m, mut a) = setup(16);
        let kv = KvStore::build(&mut m, &mut a, 2048, Placement::SliceAware { slice: 0 }).unwrap();
        for key in [0u32, 1, 100, 2047] {
            let pa = kv.value_pa(&mut m, key);
            assert_eq!(m.slice_of(pa), 0, "key {key}");
        }
    }

    #[test]
    fn striped_values_follow_their_residue_class() {
        let (mut m, mut a) = setup(16);
        let slices = vec![0usize, 2, 4, 6];
        let kv = KvStore::build(
            &mut m,
            &mut a,
            1024,
            Placement::Striped {
                slices: slices.clone(),
            },
        )
        .unwrap();
        for k in 0..128u32 {
            let pa = kv.value_pa(&mut m, k);
            assert_eq!(
                m.slice_of(pa),
                slices[(k % 4) as usize],
                "key {k} must live in its core's slice"
            );
        }
    }

    #[test]
    fn normal_values_spread_over_slices() {
        let (mut m, mut a) = setup(16);
        let kv = KvStore::build(&mut m, &mut a, 2048, Placement::Normal).unwrap();
        let slices: std::collections::HashSet<usize> = (0..2048u32)
            .map(|k| {
                let pa = kv.value_pa(&mut m, k);
                m.slice_of(pa)
            })
            .collect();
        assert_eq!(slices.len(), 8, "contiguous memory covers every slice");
    }

    #[test]
    fn hot_get_is_cheaper_slice_aware() {
        let (mut m, mut a) = setup(32);
        let mut out = [0u8; 64];
        let closest = m.closest_slice(0);
        let kv_aware = KvStore::build(
            &mut m,
            &mut a,
            4096,
            Placement::SliceAware { slice: closest },
        )
        .unwrap();
        let kv_norm = KvStore::build(&mut m, &mut a, 4096, Placement::Normal).unwrap();
        // Find keys whose value is in a far slice under normal placement.
        let far = *m.slices_by_distance(0).last().unwrap();
        let far_key = (0..4096u32)
            .find(|&k| {
                let pa = kv_norm.value_pa(&mut m, k);
                m.slice_of(pa) == far
            })
            .unwrap();
        // Warm both values into the LLC only (via DMA placement).
        let pa_aware = kv_aware.value_pa(&mut m, 7);
        let pa_norm = kv_norm.value_pa(&mut m, far_key);
        m.dma_place(pa_aware, 64);
        m.dma_place(pa_norm, 64);
        // Also warm the index lines so both GETs differ only in the value.
        kv_aware.get(&mut m, 0, 7, &mut out);
        kv_norm.get(&mut m, 0, far_key, &mut out);
        m.dma_place(pa_aware, 64);
        m.dma_place(pa_norm, 64);
        m.clflush(0, pa_aware); // Force back out of L1/L2...
        m.clflush(0, pa_norm);
        m.dma_place(pa_aware, 64); // ...and back into LLC only.
        m.dma_place(pa_norm, 64);
        let c_aware = kv_aware.get(&mut m, 0, 7, &mut out);
        let c_norm = kv_norm.get(&mut m, 0, far_key, &mut out);
        assert!(
            c_aware < c_norm,
            "near-slice GET {c_aware} must beat far-slice GET {c_norm}"
        );
    }

    #[test]
    #[should_panic(expected = "key out of range")]
    fn get_rejects_out_of_range() {
        let (mut m, mut a) = setup(16);
        let kv = KvStore::build(&mut m, &mut a, 64, Placement::Normal).unwrap();
        let mut out = [0u8; 64];
        kv.get(&mut m, 0, 64, &mut out);
    }

    #[test]
    fn striped_hot_pins_hot_slots_and_spreads_the_tail() {
        let (mut m, mut a) = setup(32);
        let slices = vec![0usize, 2, 4, 6];
        let kv = KvStore::build(
            &mut m,
            &mut a,
            4096,
            Placement::StripedHot {
                slices: slices.clone(),
                hot_per_core: 64,
            },
        )
        .unwrap();
        // Hot slots (k/4 < 64) live in their class's slice.
        for k in 0..(64 * 4) as u32 {
            let pa = kv.value_pa(&mut m, k);
            assert_eq!(
                m.slice_of(pa),
                slices[(k % 4) as usize],
                "hot key {k} must be slice-local"
            );
        }
        // The cold tail spreads over every slice (full-LLC capacity).
        let tail_slices: std::collections::HashSet<usize> = ((64 * 4)..4096u32)
            .map(|k| {
                let pa = kv.value_pa(&mut m, k);
                m.slice_of(pa)
            })
            .collect();
        assert_eq!(tail_slices.len(), 8, "cold tail covers every slice");
    }

    #[test]
    fn striped_hot_declares_per_core_hot_slots() {
        let (mut m, mut a) = setup(16);
        let kv = KvStore::build(
            &mut m,
            &mut a,
            1024,
            Placement::StripedHot {
                slices: vec![0, 2],
                hot_per_core: 3,
            },
        )
        .unwrap();
        assert!(kv.has_hot_area());
        assert_eq!(kv.hot_slots(0), Some(vec![0, 2, 4]));
        assert_eq!(kv.hot_slots(1), Some(vec![1, 3, 5]));
        assert_eq!(kv.hot_slots(2), None, "core 2 serves no class");
        let residents = kv.residents(&m, &[1, 3, 5]);
        assert_eq!(residents, vec![1, 3, 5], "identity index at build time");
    }

    #[test]
    fn striped_and_normal_declare_no_hot_area() {
        let (mut m, mut a) = setup(16);
        let kv =
            KvStore::build(&mut m, &mut a, 256, Placement::Striped { slices: vec![0] }).unwrap();
        assert!(!kv.has_hot_area());
        assert_eq!(kv.hot_slots(0), None);
        let kv = KvStore::build(&mut m, &mut a, 256, Placement::Normal).unwrap();
        assert_eq!(kv.hot_slots(0), None);
    }

    #[test]
    fn swap_self_is_a_free_noop() {
        let (mut m, mut a) = setup(16);
        let kv = KvStore::build(&mut m, &mut a, 128, Placement::Normal).unwrap();
        kv.set(&mut m, 0, 9, &[0x5a; 64]);
        let home = kv.value_pa(&mut m, 9);
        let before = m.now(0);
        assert_eq!(kv.swap_keys(&mut m, 0, 9, 9), Ok(0), "self-swap is free");
        assert_eq!(m.now(0), before, "no cycles charged");
        assert_eq!(kv.value_pa(&mut m, 9), home, "index entry untouched");
        let mut out = [0u8; 64];
        kv.get(&mut m, 0, 9, &mut out);
        assert_eq!(out, [0x5a; 64]);
    }

    #[test]
    fn swap_absent_key_is_a_typed_error_not_a_panic() {
        let (mut m, mut a) = setup(16);
        let kv = KvStore::build(&mut m, &mut a, 128, Placement::Normal).unwrap();
        let home5 = kv.value_pa(&mut m, 5);
        let before = m.now(0);
        assert_eq!(
            kv.swap_keys(&mut m, 0, 5, 128),
            Err(SwapError::KeyOutOfRange { key: 128, len: 128 })
        );
        assert_eq!(
            kv.swap_keys(&mut m, 0, 4096, 5),
            Err(SwapError::KeyOutOfRange {
                key: 4096,
                len: 128
            })
        );
        assert_eq!(m.now(0), before, "rejected swaps charge nothing");
        // And the store is untouched: key 5 still maps to slot 5, and
        // the surviving key of each rejected pair kept its home — no
        // partial write even when the *second* key is the bad one.
        assert_eq!(kv.residents(&m, &[5]), vec![5]);
        assert_eq!(kv.value_pa(&mut m, 5), home5, "index untouched");
    }

    #[test]
    fn swap_error_exhaustive_match_and_display() {
        // No wildcard arm: adding a SwapError variant must break this
        // test, and the Display must carry the diagnostic payload.
        let e = SwapError::KeyOutOfRange {
            key: 4096,
            len: 128,
        };
        match e {
            SwapError::KeyOutOfRange { key, len } => {
                assert_eq!((key, len), (4096, 128));
            }
        }
        let msg = e.to_string();
        assert!(msg.contains("4096") && msg.contains("128"), "{msg}");
        let _: &dyn std::error::Error = &e;
        assert_eq!(e, e.clone(), "SwapError is comparable for test use");
    }

    #[test]
    fn swap_exchanges_homes_and_residents_reflect_it() {
        let (mut m, mut a) = setup(16);
        let kv = KvStore::build(&mut m, &mut a, 128, Placement::Normal).unwrap();
        kv.set(&mut m, 0, 3, &[0x33; 64]);
        kv.set(&mut m, 0, 77, &[0x77; 64]);
        let cycles = kv.swap_keys(&mut m, 0, 3, 77).unwrap();
        assert!(cycles > 0, "a real swap costs cycles");
        assert_eq!(kv.residents(&m, &[3, 77]), vec![77, 3], "homes exchanged");
        let mut out = [0u8; 64];
        kv.get(&mut m, 0, 3, &mut out);
        assert_eq!(out, [0x33; 64], "values follow their keys");
        kv.get(&mut m, 0, 77, &mut out);
        assert_eq!(out, [0x77; 64]);
    }
}
