//! The KVS wire protocol: GET/SET requests in 128 B TCP packets (§3.1).
//!
//! Layout after the 54 B L2-L4 header: `op (1 B)`, `pad (1 B)`,
//! `key (4 B)`, `deadline (4 B)`, then for SET the 64 B value (which
//! still fits exactly: 54 + 10 + 64 = 128).
//!
//! The deadline is the *absolute* simulated completion deadline, in
//! 16 ns ticks ([`DEADLINE_TICK_NS`]) as an LE `u32`; 0 means "no
//! deadline". 16 ns granularity spans ~68 s of simulated time in 4 B —
//! three orders of magnitude above any SLO in the studies — and the
//! server drops expired-on-arrival requests without touching the store.

use trafficgen::{FlowTuple, PhaseGen, ZipfGen};

/// Request opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read the value of a key.
    Get,
    /// Write the value of a key.
    Set,
}

/// One request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvRequest {
    /// Opcode.
    pub op: KvOp,
    /// Key in `[0, n)`.
    pub key: u32,
}

/// Request size on the wire (paper: "encapsulated in 128 B TCP packets").
pub const REQUEST_SIZE: usize = 128;
/// Offset of the opcode byte within the frame.
pub const OP_OFF: usize = crate::server::PAYLOAD_OFF;
/// Offset of the key.
pub const KEY_OFF: usize = OP_OFF + 2;
/// Offset of the absolute deadline (LE `u32`, [`DEADLINE_TICK_NS`]
/// ticks; 0 = no deadline).
pub const DEADLINE_OFF: usize = KEY_OFF + 4;
/// Offset of the (SET) value.
pub const VALUE_OFF: usize = DEADLINE_OFF + 4;
/// Granularity of the on-wire deadline field, in nanoseconds.
pub const DEADLINE_TICK_NS: f64 = 16.0;

/// Serialises a request into an already-encoded frame payload. Clears
/// the deadline field (frames are reused buffers); set one afterwards
/// with [`write_deadline`].
pub fn write_request(frame: &mut [u8], req: &KvRequest) {
    frame[OP_OFF] = match req.op {
        KvOp::Get => 0,
        KvOp::Set => 1,
    };
    frame[KEY_OFF..KEY_OFF + 4].copy_from_slice(&req.key.to_le_bytes());
    frame[DEADLINE_OFF..DEADLINE_OFF + 4].copy_from_slice(&0u32.to_le_bytes());
}

/// Stamps an absolute completion deadline (simulated ns) into the
/// frame. Rounds *up* to the next tick so the wire value is never
/// earlier than the client asked for; saturates at the 4 B ceiling
/// (~68 s).
///
/// # Panics
///
/// Panics on a non-positive or non-finite deadline (0 is the "no
/// deadline" wire encoding; use plain [`write_request`] for that).
pub fn write_deadline(frame: &mut [u8], deadline_ns: f64) {
    assert!(
        deadline_ns.is_finite() && deadline_ns > 0.0,
        "deadline must be positive and finite"
    );
    let ticks = (deadline_ns / DEADLINE_TICK_NS).ceil().min(u32::MAX as f64) as u32;
    let ticks = ticks.max(1);
    frame[DEADLINE_OFF..DEADLINE_OFF + 4].copy_from_slice(&ticks.to_le_bytes());
}

/// Reads the absolute deadline from a frame: `None` when the frame is
/// too short to carry one (a legal short request) or the field is 0.
pub fn read_deadline(frame: &[u8]) -> Option<f64> {
    if frame.len() < DEADLINE_OFF + 4 {
        return None;
    }
    let ticks = u32::from_le_bytes(frame[DEADLINE_OFF..DEADLINE_OFF + 4].try_into().ok()?);
    (ticks > 0).then_some(ticks as f64 * DEADLINE_TICK_NS)
}

/// Parses a request from raw frame bytes.
///
/// Returns `None` for an unknown opcode or a frame too short to carry
/// the opcode + key (e.g. a truncated request): no byte sequence of any
/// length panics this parser.
pub fn read_request(frame: &[u8]) -> Option<KvRequest> {
    if frame.len() < KEY_OFF + 4 {
        return None;
    }
    let op = match frame[OP_OFF] {
        0 => KvOp::Get,
        1 => KvOp::Set,
        _ => return None,
    };
    let key = u32::from_le_bytes(frame[KEY_OFF..KEY_OFF + 4].try_into().ok()?);
    Some(KvRequest { op, key })
}

/// Where a [`RequestGen`] draws its key ranks from: a stationary Zipf
/// stream or a phase-shifting [`PhaseGen`] (hot-set churn, diurnal
/// rotation, flash crowds — the §8 non-stationary workloads).
#[derive(Debug)]
enum KeySource {
    Zipf(ZipfGen),
    Phased(PhaseGen),
}

impl KeySource {
    fn n(&self) -> u64 {
        match self {
            KeySource::Zipf(g) => g.n(),
            KeySource::Phased(g) => g.n(),
        }
    }

    fn next_rank(&mut self) -> u64 {
        match self {
            KeySource::Zipf(g) => g.next_rank(),
            KeySource::Phased(g) => g.next_rank(),
        }
    }
}

/// A GET/SET workload generator over `n` keys.
///
/// `get_permille` of requests are GETs (Fig. 8 uses 100 %, 95 % and
/// 50 %). Keys are drawn from a key source — stationary Zipf(0.99) or
/// uniform ([`RequestGen::new`]), or a phase-shifting churn stream
/// ([`RequestGen::phased`]).
#[derive(Debug)]
pub struct RequestGen {
    keygen: KeySource,
    get_permille: u32,
    mix: trafficgen::Rng64,
    client_flow: FlowTuple,
    key_stride: u32,
    key_offset: u32,
    /// Optional rank-scrambling bijection `(mult, add, mask)`.
    scramble: Option<(u64, u64, u64)>,
}

impl RequestGen {
    /// A generator issuing `get_permille`/1000 GETs over `keygen`'s keys.
    ///
    /// # Panics
    ///
    /// Panics when `get_permille > 1000`.
    pub fn new(keygen: ZipfGen, get_permille: u32, seed: u64) -> Self {
        Self::from_source(KeySource::Zipf(keygen), get_permille, seed)
    }

    /// A generator drawing ranks from a phase-shifting [`PhaseGen`]:
    /// the non-stationary workload for the migration churn studies.
    /// Composes with every decorator — partitioning, scrambling (the
    /// scramble is applied to the *post-phase* rank, so rotating the
    /// rank space still moves the scrambled hot set), flows.
    ///
    /// # Panics
    ///
    /// Panics when `get_permille > 1000`.
    pub fn phased(keygen: PhaseGen, get_permille: u32, seed: u64) -> Self {
        Self::from_source(KeySource::Phased(keygen), get_permille, seed)
    }

    fn from_source(keygen: KeySource, get_permille: u32, seed: u64) -> Self {
        assert!(get_permille <= 1000, "ratio out of range");
        Self {
            keygen,
            get_permille,
            mix: trafficgen::Rng64::seed_from_u64(seed),
            client_flow: FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211),
            key_stride: 1,
            key_offset: 0,
            scramble: None,
        }
    }

    /// The same generator emitting from a different client 5-tuple. The
    /// multi-queue server uses one flow per RX queue (see
    /// [`crate::server::flow_for_queue`]) so each generator feeds
    /// exactly one serving core.
    #[must_use]
    pub fn with_flow(mut self, flow: FlowTuple) -> Self {
        self.client_flow = flow;
        self
    }

    /// Restricts keys to the arithmetic class `rank × stride + offset`:
    /// the per-core key partition of the multi-queue server, where core
    /// *i* of *N* uses stride *N*, offset *i* — matching
    /// [`crate::store::Placement::Striped`], which homes key class *i*
    /// in core *i*'s closest slice.
    ///
    /// # Panics
    ///
    /// Panics when `stride` is 0 or `offset ≥ stride`.
    #[must_use]
    pub fn with_key_partition(mut self, stride: u32, offset: u32) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(offset < stride, "offset must be below the stride");
        self.key_stride = stride;
        self.key_offset = offset;
        self
    }

    /// Decorrelates Zipf popularity from key *identity* by passing each
    /// rank through a seeded bijection of the key space (`rank × odd +
    /// add mod 2^k`). Without this, rank 0 — the hottest key — is always
    /// key `offset`, so a freshly built store whose index is the
    /// identity already holds the Zipf head in its lowest slots and a
    /// hot-set migration study measures nothing. Real key spaces are
    /// hashed, so scrambling is the faithful default for skewed runs.
    ///
    /// # Panics
    ///
    /// Panics when the generator's key-space size is not a power of two
    /// (the multiply-add permutation is only bijective mod `2^k`).
    #[must_use]
    pub fn with_key_scramble(mut self, seed: u64) -> Self {
        let n = self.keygen.n();
        assert!(
            n.is_power_of_two(),
            "key scrambling needs a power-of-two key space, got {n}"
        );
        let mut r = trafficgen::Rng64::seed_from_u64(seed);
        // Any odd multiplier is invertible mod 2^k, so (mult, add) is a
        // permutation of the ranks.
        let mult = r.next_u64() | 1;
        let add = r.next_u64();
        self.scramble = Some((mult, add, n - 1));
        self
    }

    /// The client's 5-tuple.
    pub fn flow(&self) -> FlowTuple {
        self.client_flow
    }

    /// Draws the next request.
    pub fn next_request(&mut self) -> KvRequest {
        let op = if self.mix.gen_range(0u32..1000) < self.get_permille {
            KvOp::Get
        } else {
            KvOp::Set
        };
        let mut rank = self.keygen.next_rank();
        if let Some((mult, add, mask)) = self.scramble {
            rank = rank.wrapping_mul(mult).wrapping_add(add) & mask;
        }
        KvRequest {
            op,
            key: rank as u32 * self.key_stride + self.key_offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let mut frame = vec![0u8; REQUEST_SIZE];
        write_request(
            &mut frame,
            &KvRequest {
                op: KvOp::Set,
                key: 0xdead,
            },
        );
        let r = read_request(&frame).unwrap();
        assert_eq!(r.op, KvOp::Set);
        assert_eq!(r.key, 0xdead);
    }

    #[test]
    fn truncated_request_is_none_not_panic() {
        let mut frame = vec![0u8; REQUEST_SIZE];
        write_request(
            &mut frame,
            &KvRequest {
                op: KvOp::Get,
                key: 7,
            },
        );
        for cut in 0..KEY_OFF + 4 {
            assert!(read_request(&frame[..cut]).is_none(), "cut at {cut}");
        }
        assert!(read_request(&frame[..KEY_OFF + 4]).is_some());
    }

    #[test]
    fn deadline_roundtrip_rounds_up_to_tick() {
        let mut frame = vec![0u8; REQUEST_SIZE];
        write_request(
            &mut frame,
            &KvRequest {
                op: KvOp::Get,
                key: 1,
            },
        );
        assert_eq!(read_deadline(&frame), None, "fresh request: no deadline");
        write_deadline(&mut frame, 1000.0);
        let d = read_deadline(&frame).unwrap();
        assert!((1000.0..1000.0 + DEADLINE_TICK_NS).contains(&d), "got {d}");
        // Sub-tick deadlines round up to one tick, never to zero.
        write_deadline(&mut frame, 0.5);
        assert_eq!(read_deadline(&frame), Some(DEADLINE_TICK_NS));
        // A truncated frame cannot carry a deadline.
        assert_eq!(read_deadline(&frame[..DEADLINE_OFF + 3]), None);
    }

    #[test]
    fn write_request_clears_stale_deadline() {
        let mut frame = vec![0u8; REQUEST_SIZE];
        write_deadline(&mut frame, 5000.0);
        write_request(
            &mut frame,
            &KvRequest {
                op: KvOp::Set,
                key: 2,
            },
        );
        assert_eq!(read_deadline(&frame), None);
    }

    #[test]
    fn unknown_opcode_is_none() {
        let mut frame = vec![0u8; REQUEST_SIZE];
        frame[OP_OFF] = 9;
        assert!(read_request(&frame).is_none());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // A protocol invariant, kept visible.
    fn set_value_fits_128b_frame() {
        assert!(VALUE_OFF + 64 <= REQUEST_SIZE);
    }

    #[test]
    fn get_ratio_is_respected() {
        let mut g = RequestGen::new(ZipfGen::new(1 << 16, 0.99, 1), 950, 2);
        let n = 20_000;
        let gets = (0..n).filter(|_| g.next_request().op == KvOp::Get).count();
        let frac = gets as f64 / n as f64;
        assert!((frac - 0.95).abs() < 0.01, "GET fraction {frac}");
    }

    #[test]
    fn scramble_is_a_bijection_of_the_key_class() {
        // Uniform draw over a small power-of-two space: every scrambled
        // key must still land in the generator's key class, and over
        // enough draws all n keys must appear (bijection, not a fold).
        let n = 64u32;
        let mut g = RequestGen::new(ZipfGen::new(n as u64, 0.0, 5), 1000, 6)
            .with_key_partition(4, 1)
            .with_key_scramble(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20_000 {
            let key = g.next_request().key;
            assert_eq!(key % 4, 1, "key {key} left its class");
            assert!(key < n * 4);
            seen.insert(key);
        }
        assert_eq!(seen.len(), n as usize, "scramble folded the key space");
    }

    #[test]
    fn scramble_moves_the_zipf_head() {
        // With heavy skew the unscrambled head is rank 0 = key 0; the
        // scrambled head must be some other (deterministic) key.
        let head = |scramble: bool| {
            let mut g = RequestGen::new(ZipfGen::new(1 << 10, 0.99, 9), 1000, 10);
            if scramble {
                g = g.with_key_scramble(11);
            }
            let mut counts = std::collections::HashMap::new();
            for _ in 0..5000 {
                *counts.entry(g.next_request().key).or_insert(0u32) += 1;
            }
            counts.into_iter().max_by_key(|&(k, c)| (c, k)).unwrap().0
        };
        assert_eq!(head(false), 0);
        assert_ne!(head(true), 0);
    }

    #[test]
    fn keys_in_range() {
        let mut g = RequestGen::new(ZipfGen::new(1000, 0.0, 3), 500, 4);
        for _ in 0..5000 {
            assert!(g.next_request().key < 1000);
        }
    }

    #[test]
    fn phased_generator_moves_the_hot_key_across_phases() {
        use trafficgen::{PhaseGen, PhaseSchedule};
        let n = 1u64 << 10;
        let schedule = PhaseSchedule::hot_set_churn(2, 4000, 100);
        let mut g = RequestGen::phased(
            PhaseGen::new(ZipfGen::new(n, 0.99, 15), schedule, 16),
            1000,
            17,
        );
        let head = |g: &mut RequestGen, draws: usize| {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..draws {
                *counts.entry(g.next_request().key).or_insert(0u32) += 1;
            }
            counts.into_iter().max_by_key(|&(k, c)| (c, k)).unwrap().0
        };
        assert_eq!(head(&mut g, 4000), 0, "phase 0: unrotated Zipf head");
        assert_eq!(head(&mut g, 4000), 100, "phase 1: head rotated by 100");
    }

    #[test]
    fn phased_generator_composes_with_partition_and_scramble() {
        use trafficgen::{PhaseGen, PhaseSchedule};
        let n = 1u64 << 8;
        let schedule = PhaseSchedule::hot_set_churn(3, 500, 37);
        // Uniform base so every key appears within the draw budget; the
        // bijection and class membership are what is under test here.
        let mk = || {
            RequestGen::phased(
                PhaseGen::new(ZipfGen::new(n, 0.0, 18), schedule.clone(), 19),
                1000,
                20,
            )
            .with_key_partition(4, 2)
            .with_key_scramble(21)
        };
        let (mut a, mut b) = (mk(), mk());
        let mut seen = std::collections::HashSet::new();
        for i in 0..3000 {
            let (ra, rb) = (a.next_request(), b.next_request());
            assert_eq!(ra, rb, "draw {i}: phased streams replay identically");
            assert_eq!(ra.key % 4, 2, "key {} left its class", ra.key);
            assert!(ra.key < (n as u32) * 4);
            seen.insert(ra.key);
        }
        assert_eq!(seen.len(), n as usize, "scramble stayed a bijection");
    }
}
