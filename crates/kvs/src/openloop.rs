//! Open-loop KVS serving with deadlines, admission control, and
//! deadline-aware client retries.
//!
//! The closed loop in [`crate::server`] measures server capacity: the
//! clients refill every queue as fast as the server drains it, so
//! offered load always equals service rate. This module runs the
//! *open-loop* experiment instead — arrivals come from an external
//! schedule ([`trafficgen::Arrivals`]: Poisson, burst trains, flash
//! crowds) that does not care what the server absorbs, which is what
//! creates genuine overload and the fig15-style goodput knee.
//!
//! On top of the engine's admission layer this adds the client half of
//! an overload-resilient serving stack:
//!
//! - every logical operation carries an absolute wire deadline
//!   ([`crate::proto::write_deadline`]); the server drops
//!   expired-on-arrival requests before the store access, and the
//!   engine's `DeadlineInfeasible` policy can shed them at ingress;
//! - the client runs a timeout → exponential-backoff → bounded-retry
//!   loop. A timed-out attempt is retried with the *same* absolute
//!   deadline; the backoff doubles per attempt and doubles again when
//!   the engine reports backpressure on the target queue; the client
//!   gives up once the deadline itself has passed or the attempt budget
//!   is spent (retrying a request that can no longer meet its deadline
//!   only deepens the overload);
//! - one logical operation is *N* physical packets. The report keeps
//!   both ledgers and [`OpenLoopReport::assert_conservation`] ties them
//!   together: `completed + gave_up == logical_ops` on the logical
//!   side, and the engine's packet conservation identity on the
//!   physical side, with every retransmission, shed, NIC drop, server
//!   drop and duplicate (late) response accounted.
//!
//! # Completion matching
//!
//! The wire format carries no request ID, so the client matches
//! responses to attempts by FIFO order: the engine delivers each
//! queue's accepted frames to its worker in ring order, and the worker
//! logs one outcome per delivered frame in processing order. Matching
//! the per-queue outcome log against the per-queue FIFO of accepted
//! attempts is therefore exact — *provided every accepted frame
//! produces exactly one outcome*. All NIC losses in this model are
//! synchronous at offer time except the TX-stall fault, which loses a
//! frame *after* it was served; `run_openloop` rejects fault plans with
//! TX-stall windows for this reason (asserted up front).

use crate::proto::{RequestGen, REQUEST_SIZE};
use crate::server::{flow_for_queue, serve_packet, Served, ServerDrops};
use crate::store::KvStore;
use engine::{
    time_key, time_of_key, AdmissionPolicy, AdmitDrops, Ctx, DelayedQueue, Engine, EngineConfig,
    Execution, Hw, QueueApp, Scheduler, Verdict, WorkerSpec,
};
use llc_sim::machine::Machine;
use rte::fault::FaultPlan;
use rte::mempool::MbufPool;
use rte::nic::{HeadroomPolicy, Port, RxCompletion, TxDesc};
use std::collections::VecDeque;
use trafficgen::{Arrivals, FlowTuple, ZipfConstants, ZipfGen};

/// Where completed-op latency records go, one call per completion.
///
/// The default [`run_openloop`] collects them into
/// [`OpenLoopReport::completions`] — exact but O(completions) memory.
/// Million-request figure runs use [`run_openloop_streaming`] with a
/// bounded sink instead (e.g. one `xstats::LogHist` per queue), so the
/// report path holds no per-request `Vec` at any scale.
///
/// Calls arrive in the engine's deterministic processing order —
/// identical in serial and parallel execution — so any deterministic
/// sink yields bit-identical figures across execution modes.
pub trait CompletionSink {
    /// One completed logical op: the RX queue that served it, the
    /// completion timestamp, and the first-attempt-to-response latency.
    fn record(&mut self, queue: usize, completion_ns: f64, latency_ns: f64);
}

/// The collect-everything sink behind the default [`run_openloop`].
struct VecSink(Vec<(f64, f64)>);

impl CompletionSink for VecSink {
    fn record(&mut self, _queue: usize, completion_ns: f64, latency_ns: f64) {
        self.0.push((completion_ns, latency_ns));
    }
}

/// Open-loop run configuration. Arrival *timing* comes from the
/// [`Arrivals`] implementation passed to [`run_openloop`]; this struct
/// holds everything else.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Serving cores: core *i* polls RX queue *i*.
    pub cores: usize,
    /// PMD burst size.
    pub burst: usize,
    /// RX descriptor ring depth (per queue).
    pub queue_depth: usize,
    /// Logical operations the client issues (each may take several
    /// physical attempts).
    pub logical_ops: usize,
    /// GET ratio in permille (1000 = 100 % GET).
    pub get_permille: u32,
    /// Zipf skew for the key popularity distribution.
    pub zipf_theta: f64,
    /// RNG seed (request streams; arrival seeds live in the generator).
    pub seed: u64,
    /// Relative deadline per logical op in ns ([`f64::INFINITY`] = no
    /// deadline). The absolute wire deadline is the op's first arrival
    /// time plus this; retries carry the *same* absolute deadline.
    pub deadline_ns: f64,
    /// Base client timeout before the first retry; attempt *k* waits
    /// `timeout_ns × 2^(k-1)`, doubled again under backpressure.
    pub timeout_ns: f64,
    /// Physical attempts per logical op (1 = never retry). Must be ≥ 1.
    pub max_attempts: u32,
    /// Ingress admission policy (the server side of overload control).
    pub admission: AdmissionPolicy,
    /// Fault plan. Must not contain TX-stall windows (see module docs).
    pub faults: FaultPlan,
    /// Serial (reference) or parallel worker execution; reports are
    /// bit-identical either way.
    pub execution: Execution,
    /// Event-driven virtual-time scheduling (default) or the engine's
    /// reference tick-stepper; reports are bit-identical either way
    /// (only `EngineReport::sched` differs).
    pub scheduler: Scheduler,
}

impl OpenLoopConfig {
    /// Baseline: one core, no deadline, no retries, accept-all
    /// admission, no faults.
    pub fn new(logical_ops: usize, seed: u64) -> Self {
        Self {
            cores: 1,
            burst: 32,
            queue_depth: 256,
            logical_ops,
            get_permille: 900,
            zipf_theta: 0.99,
            seed,
            deadline_ns: f64::INFINITY,
            timeout_ns: 50_000.0,
            max_attempts: 1,
            admission: AdmissionPolicy::AcceptAll,
            faults: FaultPlan::none(),
            execution: Execution::Serial,
            scheduler: Scheduler::default(),
        }
    }

    /// The same configuration on `cores` serving cores.
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// The same configuration with a per-op relative deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline_ns: f64) -> Self {
        self.deadline_ns = deadline_ns;
        self
    }

    /// The same configuration with a retry budget: base timeout and
    /// total attempts per op.
    ///
    /// # Panics
    ///
    /// Panics when `max_attempts` is 0 or the timeout is not positive.
    #[must_use]
    pub fn with_retries(mut self, timeout_ns: f64, max_attempts: u32) -> Self {
        assert!(max_attempts >= 1, "an op always gets its first attempt");
        assert!(
            timeout_ns > 0.0 && timeout_ns.is_finite(),
            "client timeout must be positive and finite"
        );
        self.timeout_ns = timeout_ns;
        self.max_attempts = max_attempts;
        self
    }

    /// The same configuration with an ingress admission policy.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// The same configuration with a fault plan applied.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The same configuration with the given execution mode.
    #[must_use]
    pub fn with_execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }
}

/// What an open-loop run reports: the logical-op ledger, the physical
/// packet ledger, and the completion series for latency/goodput math.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// Logical operations issued (`== cfg.logical_ops`).
    pub logical_ops: u64,
    /// Logical ops that received a response in time to count (first
    /// response for an op that had not given up).
    pub completed: u64,
    /// Logical ops the client abandoned: attempt budget spent or the
    /// deadline passed with no response.
    pub gave_up: u64,
    /// Responses that arrived for an op that had already completed (a
    /// duplicate from a retransmitted attempt) or already given up.
    pub late: u64,
    /// Physical attempts offered to the NIC (`logical_ops + retries`).
    pub offered: u64,
    /// Attempts the NIC accepted into a descriptor (each produced
    /// exactly one server-side outcome).
    pub accepted: u64,
    /// Attempts rejected synchronously at offer: NIC drops plus
    /// admission sheds.
    pub rejected: u64,
    /// Physical retransmissions (attempts beyond each op's first).
    pub retries: u64,
    /// Responses the server transmitted (`completed + late`).
    pub delivered: u64,
    /// GETs among the served requests.
    pub gets: u64,
    /// Server-side drop ledger: NIC causes plus parse failures plus
    /// expired-on-arrival.
    pub drops: ServerDrops,
    /// Ingress admission sheds, by cause.
    pub admit: AdmitDrops,
    /// Simulated run duration (from the engine report).
    pub duration_ns: f64,
    /// Per completed op: `(completion time ns, latency ns)`, where
    /// latency is measured from the op's *first* attempt — a retried op
    /// pays its timeouts. Stamped when the server transmits the
    /// response (delivery in this NIC model is immediate). Empty for
    /// [`run_openloop_streaming`] runs, whose records went to the
    /// caller's [`CompletionSink`] instead.
    pub completions: Vec<(f64, f64)>,
    /// True when the run streamed its completion records to an external
    /// sink ([`run_openloop_streaming`]) instead of collecting them in
    /// [`OpenLoopReport::completions`].
    pub streamed: bool,
}

impl OpenLoopReport {
    /// Goodput: completed logical ops per second of simulated time.
    pub fn goodput_ops_per_s(&self) -> f64 {
        if self.duration_ns <= 0.0 {
            0.0
        } else {
            self.completed as f64 / (self.duration_ns / 1e9)
        }
    }

    /// The completion latencies alone (input for percentile math).
    pub fn latencies(&self) -> Vec<f64> {
        self.completions.iter().map(|&(_, l)| l).collect()
    }

    /// Asserts the extended conservation identities that tie the
    /// logical ledger to the physical one. `run_openloop` calls this
    /// before returning; tests re-call it on stored reports.
    ///
    /// # Panics
    ///
    /// Panics when any identity fails.
    pub fn assert_conservation(&self) {
        assert_eq!(
            self.completed + self.gave_up,
            self.logical_ops,
            "every logical op must complete or give up"
        );
        assert_eq!(
            self.offered,
            self.logical_ops + self.retries,
            "physical attempts are first tries plus retries"
        );
        assert_eq!(
            self.offered,
            self.accepted + self.rejected,
            "every attempt is accepted or rejected synchronously"
        );
        assert_eq!(
            self.rejected,
            self.drops.nic.total() + self.admit.total(),
            "rejections are exactly the NIC drops plus admission sheds"
        );
        assert_eq!(
            self.accepted,
            self.delivered + self.drops.malformed + self.drops.truncated + self.drops.expired,
            "every accepted attempt was served or dropped server-side"
        );
        assert_eq!(
            self.delivered,
            self.completed + self.late,
            "every transmitted response completed an op or arrived late"
        );
        if self.streamed {
            assert!(
                self.completions.is_empty(),
                "a streamed run keeps no completion Vec"
            );
        } else {
            assert_eq!(
                self.completed,
                self.completions.len() as u64,
                "one completion record per completed op"
            );
        }
    }
}

/// What the server tells the client about one delivered frame, in
/// processing (FIFO) order. `Served::Ok` means a response went out;
/// everything else is a silent server-side drop the client can only
/// discover by timeout.
struct OpenLoopApp<'s> {
    store: &'s KvStore,
    gets: u64,
    malformed: u64,
    truncated: u64,
    expired: u64,
    /// One entry per delivered frame, in processing order:
    /// `(serve-time ns, outcome)`. Drained by the client between engine
    /// steps and matched against its per-queue attempt FIFO.
    outcomes: Vec<(f64, Served)>,
}

impl QueueApp for OpenLoopApp<'_> {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, comp: &RxCompletion) -> Verdict {
        let (outcome, _) = serve_packet(self.store, None, ctx, comp);
        self.outcomes.push((ctx.wall_ns(), outcome));
        match outcome {
            Served::Ok { op } => {
                if op == crate::proto::KvOp::Get {
                    self.gets += 1;
                }
                Verdict::Tx(TxDesc {
                    mbuf: comp.mbuf,
                    data_pa: comp.data_pa,
                    len: comp.len,
                })
            }
            Served::Expired => {
                self.expired += 1;
                Verdict::Drop
            }
            Served::Truncated => {
                self.truncated += 1;
                Verdict::Drop
            }
            Served::Malformed => {
                self.malformed += 1;
                Verdict::Drop
            }
        }
    }
}

/// A client-side virtual-time event: the next schedule arrival, or one
/// op's retry/deadline timer firing. Both ride the engine's
/// [`DelayedQueue`]; same-time ties resolve by sub-priority — arrivals
/// (sub 0) before timers (sub `1 + op`), timers in op order — exactly
/// the order the former two-queue merge produced.
enum ClientEvent {
    /// The arrival the generator's [`Arrivals::peek_next_ns`] promised.
    /// Consuming it draws the arrival and schedules the next peek.
    Arrival,
    /// Op `id`'s retry timer (or its give-up check once the deadline or
    /// attempt budget is spent). Stale once the op resolved.
    Retry(usize),
}

/// One logical operation's client-side state.
struct OpState {
    queue: usize,
    req: crate::proto::KvRequest,
    /// First attempt's arrival time (latency is measured from here).
    first_ns: f64,
    /// Absolute deadline (`f64::INFINITY` when the run has none).
    deadline_ns: f64,
    attempts: u32,
    done: bool,
    gave_up: bool,
}

/// Client bookkeeping shared by the arrival and timeout paths.
struct Client {
    ops: Vec<OpState>,
    /// Per queue: op indices of accepted attempts, in offer order —
    /// the FIFO the outcome log is matched against.
    pending: Vec<VecDeque<usize>>,
    /// The client's virtual-time event queue: the promised next arrival
    /// plus every armed retry timer, keyed on integer time
    /// ([`time_key`]). Stale timers (op already done/given up) are
    /// dropped lazily at pop.
    events: DelayedQueue<ClientEvent>,
    offered: u64,
    accepted: u64,
    rejected: u64,
    completed: u64,
    gave_up: u64,
    late: u64,
}

impl Client {
    /// Offers one physical attempt for op `id` at time `t` and arms its
    /// retry timer. The timer always fires — even for a rejected
    /// attempt the client waits out the backoff (that is the point of
    /// backpressure) instead of hammering the ingress filter.
    #[allow(clippy::too_many_arguments)]
    fn issue<A: QueueApp>(
        &mut self,
        eng: &mut Engine<A>,
        hw: &mut Hw<'_>,
        flows: &[FlowTuple],
        cfg: &OpenLoopConfig,
        frame: &mut [u8],
        seq: &mut u64,
        id: usize,
        t: f64,
    ) {
        let op = &mut self.ops[id];
        op.attempts += 1;
        let attempt = op.attempts;
        let q = op.queue;
        nfv::packet::encode_frame(frame, &flows[q], REQUEST_SIZE, t, *seq);
        *seq += 1;
        crate::proto::write_request(frame, &op.req);
        if op.deadline_ns.is_finite() {
            crate::proto::write_deadline(frame, op.deadline_ns);
        }
        let deadline = op.deadline_ns;
        self.offered += 1;
        match eng.offer_with_deadline(hw, &flows[q], frame, t, deadline) {
            Ok(_) => {
                self.accepted += 1;
                self.pending[q].push_back(id);
            }
            Err(_) => self.rejected += 1,
        }
        // Exponential backoff, doubled again while the engine signals
        // backpressure on this op's queue. The exponent is clamped: at
        // 2^30 × timeout the timer is already astronomically past any
        // deadline, and further doubling would only risk overflow.
        let mut backoff = cfg.timeout_ns * f64::powi(2.0, attempt.min(30) as i32 - 1);
        if eng.backpressured(hw, q) {
            backoff *= 2.0;
        }
        self.events
            .push_sub(time_key(t + backoff), 1 + id as u64, ClientEvent::Retry(id));
    }

    /// Matches drained server outcomes against the per-queue attempt
    /// FIFOs, streaming each completion to the sink.
    fn absorb(&mut self, q: usize, log: Vec<(f64, Served)>, sink: &mut dyn CompletionSink) {
        for (t, outcome) in log {
            let id = self.pending[q]
                .pop_front()
                .expect("an outcome implies an accepted attempt at this queue's FIFO head");
            if let Served::Ok { .. } = outcome {
                let op = &mut self.ops[id];
                if op.done || op.gave_up {
                    self.late += 1;
                } else {
                    op.done = true;
                    self.completed += 1;
                    sink.record(q, t, t - op.first_ns);
                }
            }
            // Server-side drops produce no response; the client only
            // learns of them through its timeout.
        }
    }
}

/// Drains every worker's outcome log into the client. Worker order is
/// fixed, outcome order within a worker is the engine's deterministic
/// processing order, and matching is per-queue — so the client's state
/// evolution is bit-identical in serial and parallel execution.
fn drain_outcomes(
    eng: &mut Engine<OpenLoopApp<'_>>,
    client: &mut Client,
    cores: usize,
    sink: &mut dyn CompletionSink,
) {
    for w in 0..cores {
        let log = std::mem::take(&mut eng.app_mut(w).outcomes);
        if !log.is_empty() {
            client.absorb(w, log, sink);
        }
    }
}

/// Runs the open-loop benchmark: `cfg.logical_ops` operations arriving
/// on `arrivals`' schedule, spread round-robin over the queues, each
/// carrying a deadline and retried by the client per `cfg`.
///
/// # Panics
///
/// Panics when the port's queue count does not match `cfg.cores`, a
/// ready ring is not empty (open-loop matching needs a fresh port), the
/// fault plan contains TX-stall windows, or a conservation identity
/// fails at the end.
pub fn run_openloop(
    m: &mut Machine,
    store: &KvStore,
    pool: &mut MbufPool,
    port: &mut Port,
    policy: &mut dyn HeadroomPolicy,
    arrivals: &mut dyn Arrivals,
    cfg: &OpenLoopConfig,
) -> OpenLoopReport {
    let mut sink = VecSink(Vec::new());
    let mut report = run_openloop_impl(m, store, pool, port, policy, arrivals, cfg, &mut sink);
    report.completions = sink.0;
    report.streamed = false;
    report.assert_conservation();
    report
}

/// [`run_openloop`] with bounded report-path memory: every completion
/// record goes to `sink` (typically one streaming quantile sketch per
/// queue) instead of a per-request `Vec`, so million-request runs hold
/// O(sketch) state regardless of scale. The returned report is
/// identical except `completions` stays empty (`streamed` is set).
///
/// # Panics
///
/// As [`run_openloop`].
#[allow(clippy::too_many_arguments)]
pub fn run_openloop_streaming(
    m: &mut Machine,
    store: &KvStore,
    pool: &mut MbufPool,
    port: &mut Port,
    policy: &mut dyn HeadroomPolicy,
    arrivals: &mut dyn Arrivals,
    cfg: &OpenLoopConfig,
    sink: &mut dyn CompletionSink,
) -> OpenLoopReport {
    let report = run_openloop_impl(m, store, pool, port, policy, arrivals, cfg, sink);
    report.assert_conservation();
    report
}

#[allow(clippy::too_many_arguments)]
fn run_openloop_impl(
    m: &mut Machine,
    store: &KvStore,
    pool: &mut MbufPool,
    port: &mut Port,
    policy: &mut dyn HeadroomPolicy,
    arrivals: &mut dyn Arrivals,
    cfg: &OpenLoopConfig,
    sink: &mut dyn CompletionSink,
) -> OpenLoopReport {
    let cores = cfg.cores;
    assert!(cores > 0, "no serving cores");
    assert!(cfg.max_attempts >= 1, "an op always gets its first attempt");
    assert_eq!(port.num_queues(), cores, "one RX queue per serving core");
    assert!(
        cfg.faults.tx_stall.is_empty(),
        "open-loop completion matching requires a plan without TX-stall \
         windows (a TX-stalled frame is served but produces no response, \
         which would desynchronize the FIFO match; see module docs)"
    );
    for q in 0..cores {
        assert_eq!(
            port.ready_count(q),
            0,
            "queue {q}: open-loop matching needs a fresh port (carried \
             completions would sit at the FIFO head with no known attempt)"
        );
    }

    let base = FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
    let flows: Vec<FlowTuple> = (0..cores).map(|q| flow_for_queue(port, base, q)).collect();
    let n_keys = store.len() as u64;
    // One set of Zipf constants for all queues: the O(n) zeta setup
    // runs once, each per-queue generator reuses it (bit-identical to
    // recomputing — pinned in trafficgen::zipf).
    let zc = ZipfConstants::shared((n_keys / cores as u64).max(1), cfg.zipf_theta);
    let mut gens: Vec<RequestGen> = (0..cores)
        .map(|q| {
            let keygen = ZipfGen::from_constants(&zc, cfg.seed ^ (0x5eed + q as u64));
            RequestGen::new(keygen, cfg.get_permille, cfg.seed ^ (0xc11e + q as u64))
                .with_flow(flows[q])
                .with_key_partition(cores as u32, q as u32)
        })
        .collect();

    let apps: Vec<OpenLoopApp<'_>> = (0..cores)
        .map(|_| OpenLoopApp {
            store,
            gets: 0,
            malformed: 0,
            truncated: 0,
            expired: 0,
            outcomes: Vec::new(),
        })
        .collect();
    let ecfg = EngineConfig {
        workers: WorkerSpec::run_to_completion(cores),
        queue_depth: cfg.queue_depth,
        burst: cfg.burst,
        faults: cfg.faults.clone(),
        execution: cfg.execution,
        admission: cfg.admission,
        scheduler: cfg.scheduler,
    };
    let mut hw = Hw {
        m,
        port,
        pool,
        policy,
    };
    let mut eng = Engine::new(apps, ecfg, &mut hw);

    let mut client = Client {
        ops: Vec::with_capacity(cfg.logical_ops),
        pending: vec![VecDeque::new(); cores],
        events: DelayedQueue::new(),
        offered: 0,
        accepted: 0,
        rejected: 0,
        completed: 0,
        gave_up: 0,
        late: 0,
    };
    let mut frame = vec![0u8; REQUEST_SIZE];
    let mut seq = 0u64;
    let mut issued = 0usize;
    if cfg.logical_ops > 0 {
        // The generator always knows its next timestamp without
        // consuming it; promise that arrival as an event. Each consumed
        // arrival re-promises the next, so exactly one Arrival event is
        // ever pending.
        client
            .events
            .push(time_key(arrivals.peek_next_ns()), ClientEvent::Arrival);
    }

    // Event loop: one shared virtual-time queue interleaves the arrival
    // schedule with the retry timers in global time order (arrivals win
    // ties by sub-priority, deterministically).
    while let Some((key, ev)) = client.events.pop() {
        match ev {
            ClientEvent::Arrival => {
                // New logical op.
                let ta = arrivals.next_arrival_ns();
                debug_assert_eq!(time_key(ta), key, "peek promised a different time");
                let q = issued % cores;
                let req = gens[q].next_request();
                let deadline = if cfg.deadline_ns.is_finite() {
                    ta + cfg.deadline_ns
                } else {
                    f64::INFINITY
                };
                client.ops.push(OpState {
                    queue: q,
                    req,
                    first_ns: ta,
                    deadline_ns: deadline,
                    attempts: 0,
                    done: false,
                    gave_up: false,
                });
                let id = client.ops.len() - 1;
                client.issue(&mut eng, &mut hw, &flows, cfg, &mut frame, &mut seq, id, ta);
                issued += 1;
                if issued < cfg.logical_ops {
                    client
                        .events
                        .push(time_key(arrivals.peek_next_ns()), ClientEvent::Arrival);
                }
            }
            ClientEvent::Retry(id) => {
                // Retry timer. An op already resolved needs no engine
                // catch-up (running to a stale timer's horizon would
                // charge idle time to the run); otherwise catch the
                // engine up to the timer, so a response already served
                // by now marks the op done before the client
                // retransmits or gives up.
                let te = time_of_key(key);
                if client.ops[id].done || client.ops[id].gave_up {
                    continue; // Stale timer.
                }
                eng.run_until(&mut hw, te);
                drain_outcomes(&mut eng, &mut client, cores, sink);
                let op = &client.ops[id];
                if op.done || op.gave_up {
                    continue; // Resolved by the catch-up.
                }
                if op.attempts >= cfg.max_attempts || te >= op.deadline_ns {
                    // Budget spent, or even an instant retry could no
                    // longer beat the deadline: stop amplifying
                    // overload.
                    let op = &mut client.ops[id];
                    op.gave_up = true;
                    client.gave_up += 1;
                } else {
                    client.issue(&mut eng, &mut hw, &flows, cfg, &mut frame, &mut seq, id, te);
                }
            }
        }
        drain_outcomes(&mut eng, &mut client, cores, sink);
    }
    eng.drain(&mut hw);
    drain_outcomes(&mut eng, &mut client, cores, sink);
    for (q, fifo) in client.pending.iter().enumerate() {
        assert!(
            fifo.is_empty(),
            "queue {q}: {} accepted attempts never produced an outcome",
            fifo.len()
        );
    }

    let (rep, apps) = eng.finish(&mut hw);
    assert_eq!(rep.in_flight, 0, "drained run leaves nothing in flight");
    assert_eq!(rep.carried, 0, "fresh port carries nothing in");
    let drops = ServerDrops {
        nic: rep.nic,
        malformed: apps.iter().map(|a| a.malformed).sum(),
        truncated: apps.iter().map(|a| a.truncated).sum(),
        expired: apps.iter().map(|a| a.expired).sum(),
    };
    debug_assert_eq!(
        rep.app_drops,
        drops.malformed + drops.truncated + drops.expired
    );
    let report = OpenLoopReport {
        logical_ops: issued as u64,
        completed: client.completed,
        gave_up: client.gave_up,
        late: client.late,
        offered: rep.offered,
        accepted: client.accepted,
        rejected: client.rejected,
        retries: client.offered - issued as u64,
        delivered: rep.delivered,
        gets: apps.iter().map(|a| a.gets).sum(),
        drops,
        admit: rep.admit,
        duration_ns: rep.duration_ns,
        completions: Vec::new(),
        streamed: true,
    };
    assert_eq!(
        report.offered, client.offered,
        "client and engine count the same physical attempts"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Placement;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::MachineConfig;
    use rte::fault::Window;
    use rte::nic::FixedHeadroom;
    use rte::steering::{Rss, Steering};
    use slice_aware::alloc::SliceAllocator;
    use trafficgen::OpenLoopGen;

    fn run(cfg: &OpenLoopConfig, arrivals: &mut dyn Arrivals) -> OpenLoopReport {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
        let region = m.mem_mut().alloc(16 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        let store = KvStore::build(&mut m, &mut alloc, 4096, Placement::Normal).unwrap();
        let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
        let mut port = Port::new(0, Steering::Rss(Rss::new(cfg.cores)), cfg.queue_depth);
        let mut policy = FixedHeadroom(128);
        run_openloop(
            &mut m,
            &store,
            &mut pool,
            &mut port,
            &mut policy,
            arrivals,
            cfg,
        )
    }

    #[test]
    fn unloaded_run_completes_every_op_without_retries() {
        let cfg = OpenLoopConfig::new(500, 7).with_retries(1e6, 4);
        let mut arr = OpenLoopGen::constant(1e5); // 10 µs gaps: idle server.
        let rep = run(&cfg, &mut arr);
        assert_eq!(rep.completed, 500);
        assert_eq!(rep.gave_up, 0);
        assert_eq!(rep.retries, 0);
        assert_eq!(rep.late, 0);
        assert!(rep.goodput_ops_per_s() > 0.0);
        assert_eq!(rep.latencies().len(), 500);
        rep.assert_conservation();
    }

    #[test]
    fn overload_with_shedding_and_retries_conserves_and_matches_parallel() {
        // 1 ns gaps on one core: hopeless overload. Depth shedding keeps
        // the queue bounded; the client retries into the storm and must
        // still reconcile exactly — in both execution modes,
        // bit-identically.
        let cfg = OpenLoopConfig::new(3000, 11)
            .with_admission(AdmissionPolicy::QueueDepth { max_backlog: 32 })
            .with_retries(500.0, 3);
        let mut a1 = OpenLoopGen::constant(1e9);
        let serial = run(&cfg, &mut a1);
        let mut a2 = OpenLoopGen::constant(1e9);
        let parallel = run(
            &cfg.clone()
                .with_execution(Execution::Parallel { threads: 2 }),
            &mut a2,
        );
        assert!(serial.admit.depth_shed > 0, "overload must shed");
        assert!(serial.retries > 0, "rejected attempts must be retried");
        assert!(serial.gave_up > 0, "a bounded budget must give up");
        serial.assert_conservation();
        assert_eq!(serial, parallel, "execution modes diverged");
    }

    #[test]
    fn tight_deadlines_expire_or_shed_and_gave_up_counts() {
        // Deadlines shorter than the backlog drain time: the deadline
        // policy sheds at ingress and the server expires what slips
        // through; the client gives up rather than retry past the
        // deadline.
        let cfg = OpenLoopConfig::new(2000, 13)
            .with_deadline(2_000.0)
            .with_admission(AdmissionPolicy::DeadlineInfeasible {
                est_service_ns: 120.0,
            })
            .with_retries(300.0, 4);
        let mut arr = OpenLoopGen::constant(5e8); // 2 ns gaps.
        let rep = run(&cfg, &mut arr);
        assert!(
            rep.admit.deadline_shed > 0 || rep.drops.expired > 0,
            "tight deadlines must surface as sheds or expiries: {rep:?}"
        );
        assert!(rep.gave_up > 0);
        rep.assert_conservation();
    }

    #[test]
    fn hair_trigger_timeouts_produce_late_duplicate_responses() {
        // Mild overload with no shedding: the backlog grows, queueing
        // delay blows past the client timeout, and retransmitted ops'
        // original attempts still complete — the duplicate responses
        // are counted late, never double-completed.
        let cfg = OpenLoopConfig::new(800, 17).with_retries(500.0, 3);
        let mut arr = OpenLoopGen::constant(2e7); // 50 ns gaps.
        let rep = run(&cfg, &mut arr);
        assert!(rep.retries > 0, "hair-trigger timeouts must retransmit");
        assert!(rep.late > 0, "duplicates must surface as late responses");
        assert_eq!(rep.delivered, rep.completed + rep.late);
        rep.assert_conservation();
    }

    #[test]
    fn multi_core_open_loop_conserves_under_faults() {
        let cfg = OpenLoopConfig::new(2000, 19)
            .with_cores(4)
            .with_admission(AdmissionPolicy::QueueDepth { max_backlog: 64 })
            .with_retries(2_000.0, 3)
            .with_faults(
                FaultPlan::none()
                    .with_seed(5)
                    .with_corrupt_prob(0.02)
                    .with_link_flap(Window::new(10_000, 20_000)),
            );
        let mut arr = OpenLoopGen::poisson(2e7, 23);
        let rep = run(&cfg, &mut arr);
        assert!(rep.drops.nic.crc > 0, "corruption must surface");
        assert!(rep.drops.nic.link_down > 0, "flap must surface");
        assert!(rep.completed > 0);
        rep.assert_conservation();
    }

    /// The streaming sink sees exactly the records the Vec path
    /// collects — same order, same bits — and the two reports agree on
    /// every counter. This is the contract that lets figure binaries
    /// swap the O(completions) Vec for a bounded sketch without any
    /// output drift.
    #[test]
    fn streaming_sink_matches_vec_path_bit_for_bit() {
        struct Collect(Vec<(usize, f64, f64)>);
        impl CompletionSink for Collect {
            fn record(&mut self, queue: usize, completion_ns: f64, latency_ns: f64) {
                self.0.push((queue, completion_ns, latency_ns));
            }
        }

        let cfg = OpenLoopConfig::new(1500, 21)
            .with_cores(2)
            .with_retries(2_000.0, 2);
        let mut a1 = OpenLoopGen::poisson(5e7, 3);
        let vec_rep = run(&cfg, &mut a1);

        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
        let region = m.mem_mut().alloc(16 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        let store = KvStore::build(&mut m, &mut alloc, 4096, Placement::Normal).unwrap();
        let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
        let mut port = Port::new(0, Steering::Rss(Rss::new(cfg.cores)), cfg.queue_depth);
        let mut policy = FixedHeadroom(128);
        let mut a2 = OpenLoopGen::poisson(5e7, 3);
        let mut sink = Collect(Vec::new());
        let streamed = run_openloop_streaming(
            &mut m,
            &store,
            &mut pool,
            &mut port,
            &mut policy,
            &mut a2,
            &cfg,
            &mut sink,
        );

        assert!(streamed.streamed && streamed.completions.is_empty());
        let stream_records: Vec<(f64, f64)> = sink.0.iter().map(|&(_, t, l)| (t, l)).collect();
        assert_eq!(
            stream_records, vec_rep.completions,
            "record streams diverged"
        );
        assert!(sink.0.iter().all(|&(q, _, _)| q < cfg.cores));
        assert_eq!(streamed.completed, vec_rep.completed);
        assert_eq!(streamed.offered, vec_rep.offered);
        assert_eq!(streamed.retries, vec_rep.retries);
        assert_eq!(streamed.late, vec_rep.late);
        assert_eq!(streamed.duration_ns, vec_rep.duration_ns);
        streamed.assert_conservation();
    }

    #[test]
    #[should_panic(expected = "TX-stall")]
    fn tx_stall_plans_are_rejected() {
        let cfg = OpenLoopConfig::new(10, 1)
            .with_faults(FaultPlan::none().with_tx_stall(Window::new(0, 100)));
        let mut arr = OpenLoopGen::constant(1e6);
        run(&cfg, &mut arr);
    }
}
