//! Large-value store: slice-aware values bigger than one cache line.
//!
//! The paper's §8 limitation — "the current implementation of KVS cannot
//! map values greater than 64 B to the appropriate LLC slice" — and its
//! proposed fix: "it would still be possible to map larger data to the
//! appropriate LLC slice(s) by using a linked-list and scattering the
//! data". [`LargeKvStore`] implements that: each value is a
//! [`ScatteredBuf`] whose segments all map to the chosen slice(s), so a
//! multi-line GET pays the near-slice latency on *every* segment.

use llc_sim::hierarchy::Cycles;
use llc_sim::machine::Machine;
use llc_sim::CACHE_LINE;
use slice_aware::alloc::{AllocError, SliceAllocator, SliceBuffer};
use slice_aware::scatter::ScatteredBuf;

/// Value placement for the large store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LargePlacement {
    /// Contiguous values (the baseline).
    Normal,
    /// Every value's segments map to the slices in the set, round-robin
    /// (a single-element set = pure slice-local).
    SliceSet(Vec<usize>),
}

/// A store of `n` fixed-size values, each possibly spanning many lines.
#[derive(Debug)]
pub struct LargeKvStore {
    values: Vec<ScatteredBuf>,
    value_size: usize,
}

/// Per-operation fixed work (dispatch + bookkeeping).
pub const OP_WORK: Cycles = 20;

impl LargeKvStore {
    /// Builds a store of `n` values of `value_size` bytes each.
    ///
    /// # Panics
    ///
    /// Panics when `value_size == 0` or `n == 0`.
    pub fn build<F: FnMut(llc_sim::PhysAddr) -> usize>(
        alloc: &mut SliceAllocator<F>,
        n: usize,
        value_size: usize,
        placement: &LargePlacement,
    ) -> Result<Self, AllocError> {
        assert!(n > 0 && value_size > 0, "empty store");
        let lines = value_size.div_ceil(CACHE_LINE);
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let segments = match placement {
                LargePlacement::Normal => alloc.alloc_contiguous_lines(lines)?,
                LargePlacement::SliceSet(set) => alloc.alloc_lines_multi(set, lines)?,
            };
            values.push(scattered_from(segments, value_size));
        }
        Ok(Self { values, value_size })
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for an empty store (not constructable).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value size in bytes.
    pub fn value_size(&self) -> usize {
        self.value_size
    }

    /// The backing object of `key` (inspection).
    pub fn value(&self, key: usize) -> &ScatteredBuf {
        &self.values[key]
    }

    /// GET: timed read of the whole value.
    ///
    /// # Panics
    ///
    /// Panics when `key` is out of range or `out` is shorter than the
    /// value.
    pub fn get(&self, m: &mut Machine, core: usize, key: usize, out: &mut [u8]) -> Cycles {
        let v = &self.values[key];
        let c = v.read(m, core, 0, &mut out[..self.value_size]);
        m.advance(core, OP_WORK);
        c + OP_WORK
    }

    /// SET: timed write of the whole value.
    ///
    /// # Panics
    ///
    /// Panics when `key` is out of range or `data` is shorter than the
    /// value.
    pub fn set(&mut self, m: &mut Machine, core: usize, key: usize, data: &[u8]) -> Cycles {
        let size = self.value_size;
        let v = &self.values[key];
        let c = v.write(m, core, 0, &data[..size]);
        m.advance(core, OP_WORK);
        c + OP_WORK
    }
}

/// Wraps an already-allocated segment list as a scattered object.
fn scattered_from(segments: SliceBuffer, len: usize) -> ScatteredBuf {
    ScatteredBuf::from_segments(segments, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::{Machine, MachineConfig};

    fn setup() -> (
        Machine,
        SliceAllocator<impl FnMut(llc_sim::PhysAddr) -> usize>,
    ) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
        let r = m.mem_mut().alloc(128 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        (m, SliceAllocator::new(r, move |pa| h.slice_of(pa)))
    }

    #[test]
    fn large_values_roundtrip() {
        let (mut m, mut a) = setup();
        let mut kv =
            LargeKvStore::build(&mut a, 64, 1024, &LargePlacement::SliceSet(vec![0])).unwrap();
        let data: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
        kv.set(&mut m, 0, 17, &data);
        let mut out = vec![0u8; 1024];
        kv.get(&mut m, 0, 17, &mut out);
        assert_eq!(out, data);
        assert_eq!(kv.value_size(), 1024);
        assert_eq!(kv.len(), 64);
    }

    #[test]
    fn every_segment_of_every_value_in_the_slice() {
        let (m, mut a) = setup();
        let kv = LargeKvStore::build(&mut a, 32, 512, &LargePlacement::SliceSet(vec![3])).unwrap();
        for key in 0..32 {
            for seg in 0..8 {
                let pa = kv.value(key).segments().line(seg);
                assert_eq!(m.slice_of(pa), 3, "key {key} segment {seg}");
            }
        }
    }

    #[test]
    fn near_slice_large_gets_beat_far_slice() {
        let (mut m, mut a) = setup();
        // 1 KB values, 256 per store: each store is 256 kB, so the pair
        // cannot co-reside in the 256 kB L2 and the measured loops hit
        // the LLC, where slice distance matters on every segment.
        let n = 256;
        let near =
            LargeKvStore::build(&mut a, n, 1024, &LargePlacement::SliceSet(vec![0])).unwrap();
        let far_slice = *m.slices_by_distance(0).last().unwrap();
        let far = LargeKvStore::build(&mut a, n, 1024, &LargePlacement::SliceSet(vec![far_slice]))
            .unwrap();
        let mut out = vec![0u8; 1024];
        // Warm both into the LLC; reading one store pushes the other out
        // of the private caches.
        for k in 0..n {
            near.get(&mut m, 0, k, &mut out);
        }
        for k in 0..n {
            far.get(&mut m, 0, k, &mut out);
        }
        let mut c_near = 0;
        for k in 0..n {
            c_near += near.get(&mut m, 0, k, &mut out);
        }
        let mut c_far = 0;
        for k in 0..n {
            c_far += far.get(&mut m, 0, k, &mut out);
        }
        assert!(
            c_near < c_far,
            "near {c_near} must beat far {c_far} for LLC-resident large values"
        );
        // The saving is roughly per-segment: ~20 cycles x 16 segments on
        // the LLC-resident fraction.
        let per_get = (c_far - c_near) as f64 / n as f64;
        assert!(per_get > 50.0, "per-GET saving {per_get} too small");
    }

    #[test]
    fn multi_slice_set_spreads_segments() {
        let (m, mut a) = setup();
        let kv =
            LargeKvStore::build(&mut a, 4, 4 * 64, &LargePlacement::SliceSet(vec![0, 2])).unwrap();
        let slices: Vec<usize> = (0..4)
            .map(|seg| m.slice_of(kv.value(0).segments().line(seg)))
            .collect();
        assert_eq!(slices, vec![0, 2, 0, 2]);
    }

    #[test]
    fn normal_placement_is_contiguous() {
        let (_m, mut a) = setup();
        let kv = LargeKvStore::build(&mut a, 2, 256, &LargePlacement::Normal).unwrap();
        let segs = kv.value(0).segments();
        for w in segs.lines().windows(2) {
            assert_eq!(w[1].raw(), w[0].raw() + 64);
        }
    }
}
