//! Property test: the open-loop serving stack conserves every logical
//! operation and every physical packet — and is bit-identical between
//! serial and parallel execution — across a randomized grid of
//! scenarios: core counts, arrival processes (constant, Poisson, burst
//! trains, flash crowds, ramps), deadlines, retry budgets, admission
//! policies, and fault plans (everything but TX-stall, which the
//! open-loop matcher rejects by contract).
//!
//! [`kvs::run_openloop`] already asserts the extended conservation
//! identities internally on every run (logical: `completed + gave_up ==
//! logical_ops`, `offered == logical_ops + retries`; physical:
//! `offered == accepted + rejected`, `accepted == delivered + server
//! drops`, `delivered == completed + late`). This test's job is to
//! drive those asserts through a configuration space wide enough that
//! nothing survives by coincidence, and to pin serial/parallel
//! equivalence of the *entire report* per seed. A failure prints its
//! iteration seed and replays exactly.

use engine::{AdmissionPolicy, Execution};
use kvs::store::{KvStore, Placement};
use kvs::{run_openloop, OpenLoopConfig, OpenLoopReport};
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use rte::fault::{FaultPlan, Window};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port};
use rte::steering::{Rss, Steering};
use slice_aware::alloc::SliceAllocator;
use trafficgen::{Arrivals, OpenLoopGen, RateProfile, Rng64};

const KEYS: usize = 2048;
const OPS: usize = 500;

/// Draws one random scenario. Everything is a pure function of the
/// iteration seed so a failing case replays from its printed seed.
struct Scenario {
    cfg: OpenLoopConfig,
    arrival_seed: u64,
    rate_pps: f64,
    kind: u32,
}

fn draw(rng: &mut Rng64, seed: u64) -> Scenario {
    let cores = [1usize, 2, 4][rng.gen_range(0u32..3) as usize];
    // 2.5–80 Mops/s total: from comfortable underload to ~3× past the
    // 2-core knee, so the grid crosses the saturation boundary.
    let rate_pps = 2.5e6 * f64::powi(2.0, rng.gen_range(0u32..6) as i32);
    let deadline_ns = match rng.gen_range(0u32..3) {
        0 => f64::INFINITY,
        1 => 20_000.0,
        _ => 4_000.0 + rng.gen_range(0u32..8_000) as f64,
    };
    let timeout_ns = 1_000.0 + rng.gen_range(0u32..6_000) as f64;
    let max_attempts = 1 + rng.gen_range(0u32..4);
    let admission = match rng.gen_range(0u32..3) {
        0 => AdmissionPolicy::AcceptAll,
        1 => AdmissionPolicy::QueueDepth {
            max_backlog: 16 + rng.gen_range(0u32..48) as usize,
        },
        _ => AdmissionPolicy::DeadlineInfeasible {
            est_service_ns: 60.0 + rng.gen_range(0u32..200) as f64,
        },
    };
    // Fault windows sit inside the first ~half of the nominal arrival
    // span so they actually see traffic. TX-stall is excluded by the
    // open-loop contract (run_openloop rejects it).
    let horizon = OPS as f64 / rate_pps * 1e9;
    let faults = match rng.gen_range(0u32..4) {
        0 => FaultPlan::none(),
        1 => FaultPlan::none()
            .with_seed(seed)
            .with_corrupt_prob(0.01 * rng.gen_range(1u32..4) as f64),
        2 => FaultPlan::none()
            .with_seed(seed)
            .with_link_flap(Window::new((0.2 * horizon) as u64, (0.3 * horizon) as u64)),
        _ => FaultPlan::none()
            .with_seed(seed)
            .with_rx_stall(Window::new((0.1 * horizon) as u64, (0.2 * horizon) as u64))
            .with_truncate_prob(0.01),
    };
    let cfg = OpenLoopConfig::new(OPS, seed ^ 0xfeed)
        .with_cores(cores)
        .with_deadline(deadline_ns)
        .with_retries(timeout_ns, max_attempts)
        .with_admission(admission)
        .with_faults(faults);
    Scenario {
        cfg,
        arrival_seed: seed ^ 0xa221,
        rate_pps,
        kind: rng.gen_range(0u32..5),
    }
}

/// Builds the scenario's arrival generator. Called once per execution
/// mode: generators are stateful, so each run needs a fresh, identical
/// instance.
fn arrivals(s: &Scenario) -> OpenLoopGen {
    let horizon = OPS as f64 / s.rate_pps * 1e9;
    match s.kind {
        0 => OpenLoopGen::constant(s.rate_pps),
        1 => OpenLoopGen::poisson(s.rate_pps, s.arrival_seed),
        2 => OpenLoopGen::bursts(s.rate_pps, 16, 20.0),
        3 => OpenLoopGen::poisson(s.rate_pps, s.arrival_seed)
            .with_profile(RateProfile::flat().with_flash(0.3 * horizon, 0.5 * horizon, 4.0)),
        _ => OpenLoopGen::constant(s.rate_pps)
            .with_profile(RateProfile::flat().with_ramp(0.0, horizon, 0.5, 2.0)),
    }
}

/// One full run: fresh machine, store, pool, and port (the open-loop
/// completion matcher requires pristine rings).
fn run(cfg: &OpenLoopConfig, arr: &mut dyn Arrivals) -> OpenLoopReport {
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
    let region = m.mem_mut().alloc(8 << 20, 1 << 20).unwrap();
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let store = KvStore::build(&mut m, &mut alloc, KEYS, Placement::Normal).unwrap();
    let mut pool = MbufPool::create(&mut m, (8 * cfg.cores * cfg.queue_depth) as u32, 128, 2048)
        .expect("pool sized to the rings");
    let mut port = Port::new(0, Steering::Rss(Rss::new(cfg.cores)), cfg.queue_depth);
    let mut policy = FixedHeadroom(128);
    run_openloop(&mut m, &store, &mut pool, &mut port, &mut policy, arr, cfg)
}

#[test]
fn random_scenarios_conserve_and_match_across_execution_modes() {
    let mut seeds = Rng64::seed_from_u64(0x0b5e_55ed);
    for iter in 0..16 {
        let seed = seeds.gen_range(0u32..u32::MAX) as u64;
        let mut rng = Rng64::seed_from_u64(seed);
        let s = draw(&mut rng, seed);
        let threads = s.cfg.cores;

        let serial = run(
            &s.cfg.clone().with_execution(Execution::Serial),
            &mut arrivals(&s),
        );
        let parallel = run(
            &s.cfg
                .clone()
                .with_execution(Execution::Parallel { threads }),
            &mut arrivals(&s),
        );

        // run_openloop asserted conservation internally; re-assert on
        // the returned reports so a future refactor can't silently
        // drop the internal check.
        serial.assert_conservation();
        parallel.assert_conservation();
        assert_eq!(
            serial, parallel,
            "iteration {iter} (seed {seed:#x}): serial and parallel reports diverged"
        );
        // Liveness: the retry loop must terminate with every logical op
        // resolved one way or the other, never wedged in flight.
        assert_eq!(
            serial.completed + serial.gave_up,
            OPS as u64,
            "iteration {iter} (seed {seed:#x}): unresolved logical ops"
        );
    }
}
