//! Multi-queue fault isolation: stalling one RX queue's drain must
//! degrade only that queue, leave its siblings untouched, and keep the
//! engine's conservation invariant intact — the §8 multi-core setup
//! under the failure mode it actually fears (one queue's PCIe credit
//! path backing up while the rest of the port keeps going).

use kvs::proto::RequestGen;
use kvs::server::{flow_for_queue, run_server, ServerConfig, ServerReport};
use kvs::store::{KvStore, Placement};
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use rte::fault::{FaultPlan, Window};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port};
use rte::steering::{Rss, Steering};
use slice_aware::alloc::SliceAllocator;
use trafficgen::{FlowTuple, ZipfGen};

const CORES: usize = 4;
const KEYS: usize = 4096;

fn run_with(faults: FaultPlan, requests: usize) -> ServerReport {
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
    let region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let slices: Vec<usize> = (0..CORES).map(|c| m.closest_slice(c)).collect();
    let store = KvStore::build(&mut m, &mut alloc, KEYS, Placement::Striped { slices }).unwrap();
    let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
    let mut port = Port::new(0, Steering::Rss(Rss::new(CORES)), 256);
    let base = FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
    let mut gens: Vec<RequestGen> = (0..CORES)
        .map(|q| {
            let flow = flow_for_queue(&mut port, base, q);
            let keygen = ZipfGen::new((KEYS / CORES) as u64, 0.99, 100 + q as u64);
            RequestGen::new(keygen, 900, 7 + q as u64)
                .with_flow(flow)
                .with_key_partition(CORES as u32, q as u32)
        })
        .collect();
    let mut policy = FixedHeadroom(128);
    let cfg = ServerConfig::fig8(requests, 900, 1)
        .with_cores(CORES)
        .with_faults(faults);
    run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &cfg,
    )
}

fn assert_conservation(rep: &ServerReport) {
    assert_eq!(
        rep.offered + rep.carried,
        rep.served + rep.drops.total() + rep.in_flight,
        "global conservation"
    );
    for qr in &rep.per_queue {
        assert_eq!(
            qr.offered + qr.carried,
            qr.served + qr.drops.total() + qr.in_flight,
            "queue {} conservation",
            qr.queue
        );
    }
}

#[test]
fn transient_queue_stall_degrades_only_that_queue() {
    const STALLED: usize = 2;
    // Time-indexed (the default axis): queue 2's RX drain wedges for the
    // first 20 µs of the run, then recovers.
    let faults = FaultPlan::none().with_queue_rx_stall(STALLED, Window::new(0, 20_000));
    let rep = run_with(faults, 8_000);
    assert!(rep.served >= 8_000, "served {}", rep.served);
    assert_conservation(&rep);
    for qr in &rep.per_queue {
        if qr.queue == STALLED {
            assert!(
                qr.drops.nic.rx_stall > 0,
                "the stalled queue must shed arrivals during its window"
            );
            assert!(
                qr.served > 0,
                "the stalled queue must recover after the window"
            );
        } else {
            assert_eq!(
                qr.drops.total(),
                0,
                "queue {} must be untouched by queue {STALLED}'s stall",
                qr.queue
            );
            assert!(qr.served > 0, "queue {} must keep serving", qr.queue);
        }
    }
}

#[test]
fn permanently_stalled_queue_serves_nothing_while_siblings_carry_on() {
    const STALLED: usize = 1;
    let faults = FaultPlan::none().with_queue_rx_stall(STALLED, Window::new(0, u64::MAX));
    let rep = run_with(faults, 6_000);
    // The remaining three queues still reach the aggregate target.
    assert!(rep.served >= 6_000, "served {}", rep.served);
    assert_conservation(&rep);
    let dead = &rep.per_queue[STALLED];
    assert_eq!(dead.served, 0, "a wedged queue serves nothing");
    assert_eq!(dead.in_flight, 0, "no frame ever enters a wedged ring");
    assert_eq!(
        dead.drops.nic.rx_stall, dead.offered,
        "every offer to the wedged queue is shed as an RX stall"
    );
    for qr in &rep.per_queue {
        if qr.queue != STALLED {
            assert_eq!(qr.drops.total(), 0, "queue {} clean", qr.queue);
            assert!(qr.served > 0, "queue {} serving", qr.queue);
        }
    }
}

#[test]
fn queue_stall_reports_match_the_fault_free_baseline_elsewhere() {
    // Determinism check: with the same seeds, the non-stalled queues'
    // GET counts under a queue-0 stall window match a fault-free run's —
    // per-queue injection must not perturb sibling queues' RNG streams
    // or steering.
    let base = run_with(FaultPlan::none(), 6_000);
    let faulty = run_with(
        FaultPlan::none().with_queue_rx_stall(0, Window::new(0, 10_000)),
        6_000,
    );
    assert!(faulty.per_queue[0].drops.nic.rx_stall > 0);
    assert_eq!(base.per_queue.len(), faulty.per_queue.len());
    // Sibling queues see the same client stream; their drop ledgers stay
    // clean in both runs.
    for q in 1..CORES {
        assert_eq!(base.per_queue[q].drops.total(), 0);
        assert_eq!(faulty.per_queue[q].drops.total(), 0);
    }
}

/// Overload-resilience under compound faults: a ×4 flash crowd
/// immediately followed by a mempool-exhaustion window must degrade
/// goodput only while the faults are active. The resilient stack
/// (queue-depth shedding + deadline-aware retries) has to return to
/// its pre-fault goodput within the bucket after the last fault lifts —
/// bounded-time recovery, not just eventual.
#[test]
fn flash_crowd_and_pool_exhaustion_recover_to_pre_fault_goodput() {
    use engine::AdmissionPolicy;
    use kvs::{run_openloop, OpenLoopConfig};
    use trafficgen::{OpenLoopGen, RateProfile};

    const SERVE_CORES: usize = 2;
    const OPS: usize = 4_000;
    let base_rate = 20e6; // ~65 % of 2-core capacity.
    let horizon_ns = OPS as f64 / base_rate * 1e9; // 200 µs nominal.
    let flash = (0.20 * horizon_ns, 0.30 * horizon_ns);
    // The ×4 flash spends the op budget early: arrivals end at
    // E = T − 3 × flash_len = 0.7 T.
    let arrive_end_ns = horizon_ns - 3.0 * (flash.1 - flash.0);
    // The outage must outlast the pre-posted descriptors: the rings hold
    // 2 × 256 descriptors and the outage blocks *replenishment*, so at
    // 20 Mops/s starvation bites ~26 µs in. 40 µs of outage gives a
    // clearly starved tail.
    let pool_out = Window::new((0.35 * horizon_ns) as u64, (0.55 * horizon_ns) as u64);

    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
    let region = m.mem_mut().alloc(8 << 20, 1 << 20).unwrap();
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let store = KvStore::build(&mut m, &mut alloc, KEYS, Placement::Normal).unwrap();
    let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
    let mut port = Port::new(0, Steering::Rss(Rss::new(SERVE_CORES)), 256);
    let mut policy = FixedHeadroom(128);

    let cfg = OpenLoopConfig::new(OPS, 42)
        .with_cores(SERVE_CORES)
        .with_deadline(12_000.0)
        .with_retries(2_500.0, 4)
        .with_admission(AdmissionPolicy::QueueDepth { max_backlog: 32 })
        .with_faults(
            FaultPlan::none()
                .with_seed(3)
                .with_pool_exhaustion(pool_out),
        );
    let mut arr = OpenLoopGen::poisson(base_rate, 11)
        .with_profile(RateProfile::flat().with_flash(flash.0, flash.1, 4.0));
    let rep = run_openloop(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut arr,
        &cfg,
    );
    rep.assert_conservation();

    // Both injected faults must actually bite.
    assert!(
        rep.admit.total() > 0,
        "the flash crowd must push past the admission threshold"
    );
    assert!(
        rep.drops.nic.pool_starved > 0,
        "the exhaustion window must cost mbuf allocations"
    );

    // Goodput per tenth of the arrival span [0, E). Pre-fault: the two
    // buckets before the flash. The outage runs [0.5 E, 0.786 E) with
    // descriptors starved from ~0.68 E, so bucket 7 is the degraded
    // window; it ends at 0.8 E, right after the outage lifts, and the
    // last two buckets must already be back at pre-fault goodput.
    let bucket_ns = arrive_end_ns / 10.0;
    let mut buckets = [0u64; 10];
    for &(tc, _) in &rep.completions {
        buckets[((tc / bucket_ns) as usize).min(9)] += 1;
    }
    let pre = (buckets[0] + buckets[1]) as f64 / 2.0;
    let during = buckets[7] as f64;
    let post = (buckets[8] + buckets[9]) as f64 / 2.0;
    assert!(
        during < pre,
        "goodput must degrade while the pool is exhausted \
         (pre {pre}, during {during})"
    );
    assert!(
        post >= 0.8 * pre,
        "goodput must recover to >=80% of pre-fault within two buckets \
         of the last fault lifting (pre {pre}, post {post})"
    );
}
