//! Pipeline benchmarks: full per-packet cost of the paper's two
//! applications (stock vs CacheDirector) and per-request KVS cost.
//!
//! These time *host* execution of the simulator's packet path; the
//! simulated-cycle comparisons live in the `fig*` binaries. Useful for
//! keeping the simulator itself fast enough to run the big sweeps.
//!
//! Uses the in-tree harness; run with
//! `cargo bench -p bench --features bench-harness`.

use std::time::Duration;

use bench::harness::{black_box, Group};
use nfv::runtime::{ChainSpec, HeadroomMode, RunConfig, SteeringKind, Testbed};
use trafficgen::{ArrivalSchedule, CampusTrace, SizeMix};

fn run_packets(chain: ChainSpec, steering: SteeringKind, headroom: HeadroomMode, n: usize) {
    let mut cfg = RunConfig::paper_defaults(chain, steering, headroom);
    cfg.cores = 4;
    cfg.queue_depth = 256;
    cfg.mbufs = 2048;
    let mut tb = Testbed::new(cfg).expect("bench testbed fits simulated DRAM");
    let mut trace = CampusTrace::new(SizeMix::campus(), 1024, 7);
    let mut sched = ArrivalSchedule::constant_pps(2_000_000.0);
    for _ in 0..n {
        let t = sched.next_arrival_ns();
        let spec = trace.next_packet();
        tb.offer(&spec.flow, spec.size, t);
    }
    black_box(tb.finish());
}

fn bench_pipeline() {
    let g = Group::new("pipeline_1k_packets").measurement_time(Duration::from_secs(4));
    for (name, chain, steering) in [
        ("forwarding_rss", ChainSpec::MacSwap, SteeringKind::Rss),
        (
            "chain_fdir",
            ChainSpec::RouterNaptLb {
                routes: 512,
                offload: true,
            },
            SteeringKind::FlowDirector,
        ),
    ] {
        g.bench(&format!("{name}/stock"), || {
            run_packets(chain, steering, HeadroomMode::Stock, 1000)
        });
        g.bench(&format!("{name}/cachedirector"), || {
            run_packets(
                chain,
                steering,
                HeadroomMode::CacheDirector {
                    preferred_slices: 1,
                },
                1000,
            )
        });
    }
}

fn bench_kvs() {
    use kvs::store::{KvStore, Placement};
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::{Machine, MachineConfig};
    use slice_aware::alloc::SliceAllocator;
    let g = Group::new("kvs");
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
    let region = m.mem_mut().alloc(64 << 20, 1 << 20).expect("bench region");
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let store = KvStore::build(&mut m, &mut alloc, 1 << 14, Placement::Normal).expect("store fits");
    let mut out = [0u8; 64];
    let mut key = 0u32;
    g.bench("get_warm", || {
        key = (key + 1) % (1 << 14);
        black_box(store.get(&mut m, 0, key, &mut out));
    });
}

fn bench_cachedirector_install() {
    use cache_director::{CacheDirector, CACHEDIRECTOR_HEADROOM};
    use llc_sim::machine::{Machine, MachineConfig};
    use rte::mempool::MbufPool;
    let g = Group::new("cachedirector").measurement_time(Duration::from_secs(4));
    g.bench_with_setup(
        "install_1024_mbufs",
        || {
            let mut m =
                Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
            let pool =
                MbufPool::create(&mut m, 1024, CACHEDIRECTOR_HEADROOM, 2048).expect("pool fits");
            (m, pool)
        },
        |(mut m, pool)| {
            black_box(CacheDirector::install(&mut m, &pool, 1, 0));
        },
    );
}

fn main() {
    bench_pipeline();
    bench_kvs();
    bench_cachedirector_install();
}
