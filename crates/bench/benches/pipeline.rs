//! Pipeline benchmarks: full per-packet cost of the paper's two
//! applications (stock vs CacheDirector) and per-request KVS cost.
//!
//! These time *host* execution of the simulator's packet path; the
//! simulated-cycle comparisons live in the `fig*` binaries. Useful for
//! keeping the simulator itself fast enough to run the big sweeps.

use std::time::Duration;
use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use nfv::runtime::{ChainSpec, HeadroomMode, RunConfig, SteeringKind, Testbed};
use trafficgen::{ArrivalSchedule, CampusTrace, SizeMix};

fn run_packets(chain: ChainSpec, steering: SteeringKind, headroom: HeadroomMode, n: usize) {
    let mut cfg = RunConfig::paper_defaults(chain, steering, headroom);
    cfg.cores = 4;
    cfg.queue_depth = 256;
    cfg.mbufs = 2048;
    let mut tb = Testbed::new(cfg);
    let mut trace = CampusTrace::new(SizeMix::campus(), 1024, 7);
    let mut sched = ArrivalSchedule::constant_pps(2_000_000.0);
    for _ in 0..n {
        let t = sched.next_arrival_ns();
        let spec = trace.next_packet();
        tb.offer(&spec.flow, spec.size, t);
    }
    black_box(tb.finish());
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_1k_packets");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    for (name, chain, steering) in [
        ("forwarding_rss", ChainSpec::MacSwap, SteeringKind::Rss),
        (
            "chain_fdir",
            ChainSpec::RouterNaptLb {
                routes: 512,
                offload: true,
            },
            SteeringKind::FlowDirector,
        ),
    ] {
        g.bench_function(format!("{name}/stock"), |b| {
            b.iter(|| run_packets(chain, steering, HeadroomMode::Stock, 1000))
        });
        g.bench_function(format!("{name}/cachedirector"), |b| {
            b.iter(|| {
                run_packets(
                    chain,
                    steering,
                    HeadroomMode::CacheDirector {
                        preferred_slices: 1,
                    },
                    1000,
                )
            })
        });
    }
    g.finish();
}

fn bench_kvs(c: &mut Criterion) {
    use kvs::store::{KvStore, Placement};
    use llc_sim::hash::{SliceHash, XorSliceHash};
    use llc_sim::machine::{Machine, MachineConfig};
    use slice_aware::alloc::SliceAllocator;
    let mut g = c.benchmark_group("kvs");
    g.bench_function("get_warm", |b| {
        let mut m = Machine::new(
            MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20),
        );
        let region = m.mem_mut().alloc(64 << 20, 1 << 20).unwrap();
        let h = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
        let store =
            KvStore::build(&mut m, &mut alloc, 1 << 14, Placement::Normal).unwrap();
        let mut out = [0u8; 64];
        let mut key = 0u32;
        b.iter(|| {
            key = (key + 1) % (1 << 14);
            black_box(store.get(&mut m, 0, key, &mut out))
        })
    });
    g.finish();
}

fn bench_cachedirector_install(c: &mut Criterion) {
    use cache_director::{CacheDirector, CACHEDIRECTOR_HEADROOM};
    use llc_sim::machine::{Machine, MachineConfig};
    use rte::mempool::MbufPool;
    let mut g = c.benchmark_group("cachedirector");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    g.warm_up_time(Duration::from_secs(1));
    g.bench_function("install_1024_mbufs", |b| {
        b.iter_batched(
            || {
                let mut m = Machine::new(
                    MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20),
                );
                let pool =
                    MbufPool::create(&mut m, 1024, CACHEDIRECTOR_HEADROOM, 2048).unwrap();
                (m, pool)
            },
            |(mut m, pool)| black_box(CacheDirector::install(&mut m, &pool, 1, 0)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_kvs, bench_cachedirector_install);
criterion_main!(benches);
