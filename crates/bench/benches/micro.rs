//! Microbenchmarks of the hot primitives behind every experiment: the
//! Complex Addressing hash, cache walks at each level, steering hashes,
//! slice allocation, and the dataplane tables.

use std::time::Duration;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use llc_sim::addr::PhysAddr;
use llc_sim::hash::{FoldedSliceHash, SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use rte::steering::{toeplitz_hash, TOEPLITZ_KEY};
use trafficgen::{FlowTuple, ZipfGen};

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_secs(1));
    let xor = XorSliceHash::haswell_8slice();
    g.bench_function("xor_slice_of", |b| {
        let mut pa = 0u64;
        b.iter(|| {
            pa = pa.wrapping_add(4096);
            black_box(xor.slice_of(PhysAddr(pa)))
        })
    });
    let folded = FoldedSliceHash::skylake_18slice();
    g.bench_function("folded_slice_of", |b| {
        let mut pa = 0u64;
        b.iter(|| {
            pa = pa.wrapping_add(4096);
            black_box(folded.slice_of(PhysAddr(pa)))
        })
    });
    g.bench_function("toeplitz_12B", |b| {
        let data = [0x5au8; 12];
        b.iter(|| black_box(toeplitz_hash(&TOEPLITZ_KEY, &data)))
    });
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    let mut m =
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
    let r = m.mem_mut().alloc(64 << 20, 1 << 20).unwrap();
    g.bench_function("touch_read_l1_hit", |b| {
        let pa = r.pa(0);
        m.touch_read(0, pa);
        b.iter(|| black_box(m.touch_read(0, pa)))
    });
    g.bench_function("touch_read_llc_hit", |b| {
        // Alternate two conflicting-in-L1 lines that stay in LLC.
        let pa1 = r.pa(0);
        let pa2 = r.pa(128 << 10);
        let mut flip = false;
        // Prime.
        for i in 0..32 {
            m.touch_read(0, r.pa(i * (128 << 10) % (32 << 20)));
        }
        b.iter(|| {
            flip = !flip;
            black_box(m.touch_read(0, if flip { pa1 } else { pa2 }))
        })
    });
    g.bench_function("touch_read_streaming_miss", |b| {
        let mut off = 0usize;
        b.iter(|| {
            off = (off + 64) % (48 << 20);
            black_box(m.touch_read(0, r.pa(off)))
        })
    });
    g.bench_function("clflush", |b| {
        let pa = r.pa(4096);
        b.iter(|| black_box(m.clflush(0, pa)))
    });
    g.bench_function("dma_write_64B", |b| {
        let frame = [0u8; 64];
        let mut off = 0usize;
        b.iter(|| {
            off = (off + 2048) % (32 << 20);
            m.dma_write(r.pa(off), &frame);
        })
    });
    g.finish();
}

fn bench_alloc(c: &mut Criterion) {
    use slice_aware::alloc::SliceAllocator;
    let mut g = c.benchmark_group("slice_alloc");
    g.bench_function("alloc_64_lines", |b| {
        b.iter_with_setup(
            || {
                let mut mem = llc_sim::mem::PhysMem::new(64 << 20);
                let region = mem.alloc(32 << 20, 1 << 20).unwrap();
                let h = XorSliceHash::haswell_8slice();
                (mem, SliceAllocator::new(region, move |pa| h.slice_of(pa)))
            },
            |(_mem, mut alloc)| black_box(alloc.alloc_lines(3, 64).unwrap()),
        )
    });
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    use nfv::lpm::{synth_routes, Lpm};
    use nfv::table::FlowTable;
    let mut g = c.benchmark_group("dataplane_tables");
    let mut m =
        Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
    let lpm = Lpm::build(&mut m, &synth_routes(3120, 1)).unwrap();
    g.bench_function("lpm_lookup_timed", |b| {
        let mut dst = 0u32;
        b.iter(|| {
            dst = dst.wrapping_add(0x0101_0101);
            black_box(lpm.lookup(&mut m, 0, dst))
        })
    });
    let mut table = FlowTable::create(&mut m, 1 << 13).unwrap();
    for i in 0..4000u32 {
        table
            .insert(&mut m, 0, &FlowTuple::tcp(i, 1, 2, 3), u64::from(i))
            .unwrap();
    }
    g.bench_function("flow_table_lookup_timed", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 4000;
            black_box(table.lookup(&mut m, 0, &FlowTuple::tcp(i, 1, 2, 3)))
        })
    });
    g.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.bench_function("zipf_next_rank", |b| {
        let mut z = ZipfGen::new(1 << 24, 0.99, 1);
        b.iter(|| black_box(z.next_rank()))
    });
    g.bench_function("campus_trace_next", |b| {
        let mut t = trafficgen::CampusTrace::new(trafficgen::SizeMix::campus(), 10_000, 1);
        b.iter(|| black_box(t.next_packet()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hashes,
    bench_hierarchy,
    bench_alloc,
    bench_tables,
    bench_workloads
);
criterion_main!(benches);
