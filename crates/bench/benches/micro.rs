//! Microbenchmarks of the hot primitives behind every experiment: the
//! Complex Addressing hash, cache walks at each level, steering hashes,
//! slice allocation, and the dataplane tables.
//!
//! Uses the in-tree harness (`bench::harness`); run with
//! `cargo bench -p bench --features bench-harness`.

use bench::harness::{black_box, Group};
use llc_sim::addr::PhysAddr;
use llc_sim::hash::{FoldedSliceHash, SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use rte::steering::{toeplitz_hash, TOEPLITZ_KEY};
use trafficgen::{FlowTuple, ZipfGen};

fn bench_hashes() {
    let g = Group::new("hash");
    let xor = XorSliceHash::haswell_8slice();
    let mut pa = 0u64;
    g.bench("xor_slice_of", || {
        pa = pa.wrapping_add(4096);
        black_box(xor.slice_of(PhysAddr(pa)));
    });
    let folded = FoldedSliceHash::skylake_18slice();
    let mut pa2 = 0u64;
    g.bench("folded_slice_of", || {
        pa2 = pa2.wrapping_add(4096);
        black_box(folded.slice_of(PhysAddr(pa2)));
    });
    let data = [0x5au8; 12];
    g.bench("toeplitz_12B", || {
        black_box(toeplitz_hash(&TOEPLITZ_KEY, &data));
    });
}

fn bench_hierarchy() {
    let g = Group::new("hierarchy");
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
    let r = m.mem_mut().alloc(64 << 20, 1 << 20).expect("bench region");
    let pa = r.pa(0);
    m.touch_read(0, pa);
    g.bench("touch_read_l1_hit", || {
        black_box(m.touch_read(0, pa));
    });
    // Alternate two conflicting-in-L1 lines that stay in LLC.
    let pa1 = r.pa(0);
    let pa2 = r.pa(128 << 10);
    let mut flip = false;
    for i in 0..32 {
        m.touch_read(0, r.pa(i * (128 << 10) % (32 << 20)));
    }
    g.bench("touch_read_llc_hit", || {
        flip = !flip;
        black_box(m.touch_read(0, if flip { pa1 } else { pa2 }));
    });
    let mut off = 0usize;
    g.bench("touch_read_streaming_miss", || {
        off = (off + 64) % (48 << 20);
        black_box(m.touch_read(0, r.pa(off)));
    });
    let pa3 = r.pa(4096);
    g.bench("clflush", || {
        black_box(m.clflush(0, pa3));
    });
    let frame = [0u8; 64];
    let mut off2 = 0usize;
    g.bench("dma_write_64B", || {
        off2 = (off2 + 2048) % (32 << 20);
        m.dma_write(r.pa(off2), &frame);
    });
}

fn bench_alloc() {
    use slice_aware::alloc::SliceAllocator;
    let g = Group::new("slice_alloc");
    g.bench_with_setup(
        "alloc_64_lines",
        || {
            let mut mem = llc_sim::mem::PhysMem::new(64 << 20);
            let region = mem.alloc(32 << 20, 1 << 20).expect("bench region");
            let h = XorSliceHash::haswell_8slice();
            (mem, SliceAllocator::new(region, move |pa| h.slice_of(pa)))
        },
        |(_mem, mut alloc)| {
            black_box(alloc.alloc_lines(3, 64).expect("alloc"));
        },
    );
}

fn bench_tables() {
    use nfv::lpm::{synth_routes, Lpm};
    use nfv::table::FlowTable;
    let g = Group::new("dataplane_tables");
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
    let lpm = Lpm::build(&mut m, &synth_routes(3120, 1)).expect("routes fit");
    let mut dst = 0u32;
    g.bench("lpm_lookup_timed", || {
        dst = dst.wrapping_add(0x0101_0101);
        black_box(lpm.lookup(&mut m, 0, dst));
    });
    let mut table = FlowTable::create(&mut m, 1 << 13).expect("table fits");
    for i in 0..4000u32 {
        table
            .insert(&mut m, 0, &FlowTuple::tcp(i, 1, 2, 3), u64::from(i))
            .expect("under capacity");
    }
    let mut i = 0u32;
    g.bench("flow_table_lookup_timed", || {
        i = (i + 1) % 4000;
        black_box(table.lookup(&mut m, 0, &FlowTuple::tcp(i, 1, 2, 3)));
    });
}

fn bench_workloads() {
    let g = Group::new("workloads");
    let mut z = ZipfGen::new(1 << 24, 0.99, 1);
    g.bench("zipf_next_rank", || {
        black_box(z.next_rank());
    });
    let mut t = trafficgen::CampusTrace::new(trafficgen::SizeMix::campus(), 10_000, 1);
    g.bench("campus_trace_next", || {
        black_box(t.next_packet());
    });
}

fn main() {
    bench_hashes();
    bench_hierarchy();
    bench_alloc();
    bench_tables();
    bench_workloads();
}
