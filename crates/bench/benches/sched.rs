//! Dispatch-path benchmark: the per-offer cost of the event-driven
//! scheduler vs the retained reference tick-stepper, isolated from
//! application work.
//!
//! The figure binaries can't resolve this delta: a reference no-op
//! epoch costs tens of nanoseconds against microseconds of LLC
//! simulation per request, so the scheduler difference drowns in
//! run-to-run noise. Here the app is a zero-work echo and each
//! iteration is one closed-loop round exactly shaped like
//! `kvs::server::run_server`'s: top the queues up with offers at the
//! synced `now`, then `step`. Under the reference tick-stepper every
//! offer dispatches a workless epoch (partition scan + idle pass +
//! hook); under the event-driven scheduler it takes the O(workers)
//! fast path. `scripts/bench.sh` parses the two medians into
//! `BENCH_engine.json` as the dispatch-path speedup.
//!
//! Run with `cargo bench -p bench --features bench-harness --bench sched`.

use bench::harness::{black_box, Group};
use engine::{
    AdmissionPolicy, Ctx, Engine, EngineConfig, Execution, Hw, QueueApp, Scheduler, Verdict,
    WorkerSpec,
};
use llc_sim::machine::{Machine, MachineConfig};
use rte::fault::FaultPlan;
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port, RxCompletion, TxDesc};
use rte::steering::{Rss, Steering};
use trafficgen::FlowTuple;

/// Echo with zero timed work: every cycle spent is engine bookkeeping.
struct ZeroEcho;

impl QueueApp for ZeroEcho {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, comp: &RxCompletion) -> Verdict {
        Verdict::Tx(TxDesc {
            mbuf: comp.mbuf,
            data_pa: comp.data_pa,
            len: comp.len,
        })
    }
}

const WORKERS: usize = 4;
const DEPTH: usize = 64;
const OFFERS_PER_ROUND: usize = 32;

fn bench_scheduler(g: &Group, name: &str, scheduler: Scheduler) {
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
    let mut pool = MbufPool::create(&mut m, (4 * WORKERS * DEPTH) as u32, 128, 2048).unwrap();
    let mut port = Port::new(0, Steering::Rss(Rss::new(WORKERS)), DEPTH);
    let mut policy = FixedHeadroom(128);
    let mut hw = Hw {
        m: &mut m,
        port: &mut port,
        pool: &mut pool,
        policy: &mut policy,
    };
    let mut eng = Engine::new(
        (0..WORKERS).map(|_| ZeroEcho).collect::<Vec<_>>(),
        EngineConfig {
            workers: WorkerSpec::run_to_completion(WORKERS),
            queue_depth: DEPTH,
            burst: OFFERS_PER_ROUND,
            faults: FaultPlan::none(),
            execution: Execution::Serial,
            admission: AdmissionPolicy::AcceptAll,
            scheduler,
        },
        &mut hw,
    );
    let flows: Vec<FlowTuple> = (0..32)
        .map(|i| FlowTuple::tcp(0x0a00_0000 + i, 1000 + i as u16, 0xc0a8_0001, 80))
        .collect();
    let frame = [0u8; 64];
    let mut i = 0usize;
    g.bench(name, || {
        // One closed-loop round, the run_server shape: offers at the
        // synced now (each one a run_until that the reference stepper
        // answers with a workless epoch), then one step to process.
        let t = eng.now_ns();
        for _ in 0..OFFERS_PER_ROUND {
            i += 1;
            let _ = black_box(eng.offer(&mut hw, &flows[i % flows.len()], &frame, t));
        }
        black_box(eng.step(&mut hw));
    });
    eng.drain(&mut hw);
    eng.finish(&mut hw);
}

/// The empty epoch itself: advance virtual time past a workless engine
/// (the open-loop inter-arrival gap shape). The reference stepper pays
/// a full partition + idle pass per call; the event-driven scheduler
/// answers from the heap and the idle floor.
fn bench_idle_advance(g: &Group, name: &str, scheduler: Scheduler) {
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
    let mut pool = MbufPool::create(&mut m, (4 * WORKERS * DEPTH) as u32, 128, 2048).unwrap();
    let mut port = Port::new(0, Steering::Rss(Rss::new(WORKERS)), DEPTH);
    let mut policy = FixedHeadroom(128);
    let mut hw = Hw {
        m: &mut m,
        port: &mut port,
        pool: &mut pool,
        policy: &mut policy,
    };
    let mut eng = Engine::new(
        (0..WORKERS).map(|_| ZeroEcho).collect::<Vec<_>>(),
        EngineConfig {
            workers: WorkerSpec::run_to_completion(WORKERS),
            queue_depth: DEPTH,
            burst: OFFERS_PER_ROUND,
            faults: FaultPlan::none(),
            execution: Execution::Serial,
            admission: AdmissionPolicy::AcceptAll,
            scheduler,
        },
        &mut hw,
    );
    let mut t = 0.0f64;
    g.bench(name, || {
        t += 100.0;
        eng.run_until(&mut hw, black_box(t));
    });
    eng.finish(&mut hw);
}

fn main() {
    let g = Group::new("sched_dispatch");
    // The ~25 us closed-loop rounds are at the mercy of multi-second
    // neighbour drift on shared machines; interleave three repetitions
    // of the pair so a consumer can take per-name minima from
    // comparable quiet windows.
    for _ in 0..3 {
        bench_scheduler(&g, "closed_loop_round_event", Scheduler::EventDriven);
        bench_scheduler(&g, "closed_loop_round_reference", Scheduler::ReferenceTick);
    }
    bench_idle_advance(&g, "empty_advance_event", Scheduler::EventDriven);
    bench_idle_advance(&g, "empty_advance_reference", Scheduler::ReferenceTick);
}
