//! Ablation benches for the design choices DESIGN.md §6 calls out:
//! replacement policy, DDIO way budget, hardware prefetchers, steering
//! mode and headroom strategy.
//!
//! Each ablation prints the *simulated* quantity of interest once per
//! configuration (so the effect direction is visible in the log) and
//! then times host-side execution of the same fixed workload with the
//! in-tree harness. Run with
//! `cargo bench -p bench --features bench-harness`.

use std::time::Duration;

use bench::harness::{black_box, Group};
use llc_sim::machine::{Machine, MachineConfig};
use llc_sim::prefetch::PrefetchConfig;
use llc_sim::replacement::ReplacementKind;
use llc_sim::AccessKind;
use nfv::runtime::{run_experiment, ChainSpec, HeadroomMode, RunConfig, SteeringKind};
use slice_aware::alloc::SliceAllocator;
use slice_aware::workload::{random_access, warm_buffer};
use trafficgen::{ArrivalSchedule, CampusTrace, SizeMix};

/// Simulated cycles for the §3 read loop under a replacement policy.
fn slice_loop_cycles(repl: ReplacementKind) -> u64 {
    let mut m = Machine::new(
        MachineConfig::haswell_e5_2667_v3()
            .with_replacement(repl)
            .with_dram_capacity(256 << 20),
    );
    let region = m.mem_mut().alloc(128 << 20, 1 << 20).expect("bench region");
    let h = llc_sim::hash::XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| {
        use llc_sim::hash::SliceHash;
        h.slice_of(pa)
    });
    let buf = alloc.alloc_lines(0, 1_441_792 / 64).expect("buffer fits");
    warm_buffer(&mut m, 0, &buf);
    random_access(&mut m, 0, &buf, 5_000, AccessKind::Read, 1)
}

fn ablate_replacement() {
    let g = Group::new("ablation_replacement").measurement_time(Duration::from_secs(4));
    for (name, repl) in [
        ("lru", ReplacementKind::Lru),
        ("random", ReplacementKind::Random),
    ] {
        let cycles = slice_loop_cycles(repl);
        println!("[ablation] replacement={name}: {cycles} simulated cycles for the §3 loop");
        g.bench(name, || {
            black_box(slice_loop_cycles(repl));
        });
    }
}

/// Simulated p99 of the stateful chain at the paper's loaded operating
/// point (100 Gbps offered, 8 cores) for a DDIO way budget — deep queues
/// are what makes the 10 % I/O-way limit (§8) bite.
fn forwarding_p99(ddio_ways: usize, prefetch: PrefetchConfig) -> f64 {
    let cfg = RunConfig::paper_defaults(
        ChainSpec::RouterNaptLb {
            routes: 512,
            offload: true,
        },
        SteeringKind::FlowDirector,
        HeadroomMode::CacheDirector {
            preferred_slices: 1,
        },
    );
    let m = Machine::new(
        MachineConfig::haswell_e5_2667_v3()
            .with_ddio_ways(ddio_ways)
            .with_prefetch(prefetch),
    );
    let mut tb = nfv::runtime::Testbed::on_machine(cfg, m).expect("bench testbed fits");
    let mut trace = CampusTrace::new(SizeMix::campus(), 4096, 3);
    let mut sched = ArrivalSchedule::constant_gbps(100.0, 670.0);
    for _ in 0..40_000 {
        let t = sched.next_arrival_ns();
        let s = trace.next_packet();
        tb.offer(&s.flow, s.size, t);
    }
    tb.finish()
        .summary()
        .expect("delivered packets")
        .percentile(99.0)
}

fn ablate_ddio() {
    let g = Group::new("ablation_ddio_ways").measurement_time(Duration::from_secs(4));
    for ways in [2usize, 4, 8] {
        let p99 = forwarding_p99(ways, PrefetchConfig::disabled());
        println!("[ablation] ddio_ways={ways}: simulated p99 = {p99:.0} ns");
        g.bench(&format!("ways_{ways}"), || {
            black_box(forwarding_p99(ways, PrefetchConfig::disabled()));
        });
    }
}

fn ablate_prefetch() {
    let g = Group::new("ablation_prefetch").measurement_time(Duration::from_secs(4));
    for (name, p) in [
        ("off", PrefetchConfig::disabled()),
        ("bios_default", PrefetchConfig::bios_default()),
    ] {
        let p99 = forwarding_p99(2, p);
        println!("[ablation] prefetch={name}: simulated p99 = {p99:.0} ns");
        g.bench(name, || {
            black_box(forwarding_p99(2, p));
        });
    }
}

/// Queue imbalance (max/mean packets per queue) for a steering mode.
fn steering_imbalance(steering: SteeringKind) -> f64 {
    let mut cfg = RunConfig::paper_defaults(ChainSpec::MacSwap, steering, HeadroomMode::Stock);
    cfg.cores = 8;
    cfg.queue_depth = 256;
    cfg.mbufs = 8192;
    let mut trace = CampusTrace::new(SizeMix::campus(), 4096, 5);
    let mut sched = ArrivalSchedule::constant_pps(1_000_000.0);
    let res = run_experiment(cfg, &mut trace, &mut sched, 30_000).expect("bench config fits");
    // Imbalance proxy: achieved p99 relative to mean (hot queues stretch
    // the tail).
    let s = res.summary().expect("delivered packets");
    s.percentile(99.0) / s.mean()
}

fn ablate_steering() {
    let g = Group::new("ablation_steering").measurement_time(Duration::from_secs(4));
    for (name, s) in [
        ("rss", SteeringKind::Rss),
        ("flow_director", SteeringKind::FlowDirector),
    ] {
        let ratio = steering_imbalance(s);
        println!("[ablation] steering={name}: p99/mean = {ratio:.2}");
        g.bench(name, || {
            black_box(steering_imbalance(s));
        });
    }
}

mod headroom_ablation {
    use super::*;
    use cache_director::{CacheDirector, SortedPools, CACHEDIRECTOR_HEADROOM};
    use rte::mempool::MbufPool;
    use rte::nic::{FixedHeadroom, HeadroomPolicy, Port};
    use rte::steering::{Rss, Steering};

    /// Simulated cycles for a 256-descriptor refill under a headroom
    /// strategy, plus how many posted buffers end up slice-placed.
    pub fn refill_cost(strategy: &str) -> (u64, usize) {
        let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(128 << 20));
        let mut pool =
            MbufPool::create(&mut m, 512, CACHEDIRECTOR_HEADROOM, 2048).expect("pool fits");
        let mut port = Port::new(0, Steering::Rss(Rss::new(1)), 256);
        let core = 0;
        let t0 = m.now(core);
        let placed = match strategy {
            "fixed" => {
                let mut p = FixedHeadroom(128);
                port.refill(&mut m, &mut pool, 0, core, &mut p, 256);
                0
            }
            "cachedirector" => {
                let mut p = CacheDirector::install(&mut m, &pool, 1, 0);
                port.refill(&mut m, &mut pool, 0, core, &mut p, 256);
                // All placements succeed on Haswell.
                256
            }
            "sorted" => {
                // App-level sorting: only core 0's buffers are posted,
                // with plain fixed headroom.
                let mut sorted = SortedPools::sort(&mut m, &pool, 128, 1);
                let mut p = FixedHeadroom(128);
                let mut n = 0;
                while let Some(mb) = sorted.get(core) {
                    let off = p.data_off(&mut m, &pool, mb, core);
                    if port.post(&mut m, &pool, 0, core, mb, off).is_err() {
                        break;
                    }
                    n += 1;
                    if n == 256 {
                        break;
                    }
                }
                n
            }
            _ => unreachable!(),
        };
        (m.now(core) - t0, placed)
    }
}

fn ablate_headroom_strategy() {
    let g = Group::new("ablation_headroom_strategy").measurement_time(Duration::from_secs(4));
    for name in ["fixed", "cachedirector", "sorted"] {
        let (cycles, placed) = headroom_ablation::refill_cost(name);
        println!(
            "[ablation] headroom={name}: refill of 256 descriptors = {cycles} simulated \
             cycles, {placed} slice-placed"
        );
        g.bench(name, || {
            black_box(headroom_ablation::refill_cost(name));
        });
    }
}

fn main() {
    ablate_replacement();
    ablate_ddio();
    ablate_prefetch();
    ablate_steering();
    ablate_headroom_strategy();
}
