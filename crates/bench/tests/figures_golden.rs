//! Figure-output regression: every experiment binary's `--smoke` stdout is
//! diffed byte-for-byte against a committed golden snapshot, in BOTH
//! execution modes.
//!
//! Two properties are pinned at once:
//!
//! 1. **Figures don't drift silently.** Any change to engine semantics,
//!    defaults, or report formatting shows up as a snapshot diff that has
//!    to be reviewed and re-recorded (`scripts/update_goldens.sh`).
//! 2. **`--parallel` is invisible in the output.** Serial and parallel
//!    runs are compared against the *same* snapshot, so threaded
//!    execution must be bit-identical to serial all the way out to the
//!    printed report — the user-visible face of the determinism
//!    guarantee proved structurally in `crates/engine/tests/differential.rs`
//!    and `tests/determinism.rs`.
//!
//! Snapshots live in `crates/bench/tests/golden/` and are regenerated
//! with `scripts/update_goldens.sh` after any intentional output change.

use std::process::Command;

/// Runs one experiment binary with the given args and returns its stdout.
fn run(exe: &str, args: &[&str]) -> String {
    let out = Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} {args:?} exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("figure output is UTF-8")
}

/// Asserts `actual` matches the golden snapshot, with a readable
/// first-divergence report on failure.
fn assert_matches_golden(name: &str, mode: &str, golden: &str, actual: &str) {
    if actual == golden {
        return;
    }
    let diverge = golden
        .lines()
        .zip(actual.lines())
        .position(|(g, a)| g != a)
        .unwrap_or_else(|| golden.lines().count().min(actual.lines().count()));
    let want = golden.lines().nth(diverge).unwrap_or("<eof>");
    let got = actual.lines().nth(diverge).unwrap_or("<eof>");
    panic!(
        "{name} ({mode}) diverged from golden snapshot at line {}:\n  \
         golden: {want}\n  actual: {got}\n\
         If this change is intentional, regenerate with \
         scripts/update_goldens.sh and review the diff.",
        diverge + 1
    );
}

macro_rules! golden_tests {
    ($($bin:ident),+ $(,)?) => {$(
        mod $bin {
            use super::*;

            const GOLDEN: &str =
                include_str!(concat!("golden/", stringify!($bin), ".txt"));
            const EXE: &str =
                env!(concat!("CARGO_BIN_EXE_", stringify!($bin)));

            #[test]
            fn smoke_serial_matches_golden() {
                let out = run(EXE, &["--smoke"]);
                assert_matches_golden(stringify!($bin), "serial", GOLDEN, &out);
            }

            #[test]
            fn smoke_parallel_matches_same_golden() {
                let out = run(EXE, &["--smoke", "--parallel"]);
                assert_matches_golden(stringify!($bin), "parallel", GOLDEN, &out);
            }
        }
    )+};
}

/// The fig08_kvs `--migrate` study has its own golden: a different
/// banner and table from the default run (which keeps its own snapshot
/// untouched), same bit-identical serial/parallel contract.
mod fig08_kvs_migrate {
    use super::*;

    const GOLDEN: &str = include_str!("golden/fig08_kvs_migrate.txt");
    const EXE: &str = env!("CARGO_BIN_EXE_fig08_kvs");
    const ARGS: [&str; 3] = ["--zipf=0.99", "--migrate=4096", "--cores=4"];

    #[test]
    fn smoke_serial_matches_golden() {
        let out = run(EXE, &[&["--smoke"], &ARGS[..]].concat());
        assert_matches_golden("fig08_kvs_migrate", "serial", GOLDEN, &out);
    }

    #[test]
    fn smoke_parallel_matches_same_golden() {
        let out = run(EXE, &[&["--smoke", "--parallel"], &ARGS[..]].concat());
        assert_matches_golden("fig08_kvs_migrate", "parallel", GOLDEN, &out);
    }
}

/// The fig08_kvs `--churn` study (cost-aware migration under hot-set
/// churn) has its own golden, same bit-identical serial/parallel
/// contract. The snapshot also pins the acceptance shape: zero at-loss
/// swaps for the cost-aware row.
mod fig08_kvs_churn {
    use super::*;

    const GOLDEN: &str = include_str!("golden/fig08_kvs_churn.txt");
    const EXE: &str = env!("CARGO_BIN_EXE_fig08_kvs");
    const ARGS: [&str; 3] = ["--zipf=0.99", "--churn=4096", "--cores=4"];

    #[test]
    fn smoke_serial_matches_golden() {
        let out = run(EXE, &[&["--smoke"], &ARGS[..]].concat());
        assert_matches_golden("fig08_kvs_churn", "serial", GOLDEN, &out);
    }

    #[test]
    fn smoke_parallel_matches_same_golden() {
        let out = run(EXE, &[&["--smoke", "--parallel"], &ARGS[..]].concat());
        assert_matches_golden("fig08_kvs_churn", "parallel", GOLDEN, &out);
    }
}

/// The fig_knee_kvs `--chaos` study has its own golden (the overload
/// sweep keeps the default snapshot), same bit-identical
/// serial/parallel contract.
mod fig_knee_kvs_chaos {
    use super::*;

    const GOLDEN: &str = include_str!("golden/fig_knee_kvs_chaos.txt");
    const EXE: &str = env!("CARGO_BIN_EXE_fig_knee_kvs");
    const ARGS: [&str; 1] = ["--chaos"];

    #[test]
    fn smoke_serial_matches_golden() {
        let out = run(EXE, &[&["--smoke"], &ARGS[..]].concat());
        assert_matches_golden("fig_knee_kvs_chaos", "serial", GOLDEN, &out);
    }

    #[test]
    fn smoke_parallel_matches_same_golden() {
        let out = run(EXE, &[&["--smoke", "--parallel"], &ARGS[..]].concat());
        assert_matches_golden("fig_knee_kvs_chaos", "parallel", GOLDEN, &out);
    }
}

golden_tests!(
    table01_cachespec,
    fig04_hash,
    fig05_latency,
    fig06_speedup,
    fig07_ops,
    fig08_kvs,
    fig12_lowrate,
    fig13_forward,
    fig14_chain,
    fig15_knee,
    fig_knee_kvs,
    fig16_table4_skylake,
    fig17_isolation,
    fig_tenants,
    fig_scale_kvs,
    ext_pipeline,
    headroom_dist,
    kvs_probe,
    skylake_nfv,
    calibrate,
);
