//! Shared support for the experiment binaries.
//!
//! Every table and figure of the paper has a binary under `src/bin/`
//! that regenerates it (see DESIGN.md §4 for the index and EXPERIMENTS.md
//! for recorded paper-vs-measured numbers). This module carries the
//! common bits: scale-argument parsing and median-of-runs aggregation.

use xstats::Summary;

pub mod harness;

/// Experiment scale, from the command line:
/// `<binary> [runs] [packets] [--smoke] [--parallel]`.
///
/// Every binary has defaults sized to finish in seconds; passing larger
/// values tightens the statistics toward the paper's 50-run protocol.
/// Passing `--smoke` anywhere overrides both with tiny values — the CI
/// smoke stage uses it to prove every figure binary still runs end to
/// end without paying for statistics. Passing `--parallel` anywhere
/// makes the engine-backed experiments execute their workers on OS
/// threads ([`engine::Execution::Parallel`]); results are bit-identical
/// to serial by construction, only the wall clock changes.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Independent repetitions (the paper uses 50).
    pub runs: usize,
    /// Packets (or operations) per run.
    pub packets: usize,
    /// `--smoke` was passed: binaries should also shrink any scale
    /// knobs of their own (store sizes, sweep points).
    pub smoke: bool,
    /// `--parallel` was passed: engine-backed experiments run workers
    /// on OS threads. Binaries without an engine accept and ignore it.
    pub parallel: bool,
}

impl Scale {
    /// Parses `[runs] [packets]` from the process arguments, with the
    /// given defaults. A literal `--smoke` in any position takes
    /// precedence: one run, at most [`Scale::SMOKE_PACKETS`] packets.
    /// `--parallel` composes with either form.
    pub fn from_args(default_runs: usize, default_packets: usize) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let parallel = args.iter().any(|a| a == "--parallel");
        if args.iter().any(|a| a == "--smoke") {
            return Self {
                runs: 1,
                packets: default_packets.min(Self::SMOKE_PACKETS),
                smoke: true,
                parallel,
            };
        }
        let positional: Vec<&String> = args
            .iter()
            .skip(1)
            .filter(|a| !a.starts_with("--"))
            .collect();
        Self {
            runs: positional
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or(default_runs),
            packets: positional
                .get(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(default_packets),
            smoke: false,
            parallel,
        }
    }

    /// The execution mode this scale selects for an engine with
    /// `workers` workers: [`engine::Execution::Serial`] by default, one
    /// OS thread per worker under `--parallel`.
    pub fn execution(&self, workers: usize) -> engine::Execution {
        engine::Execution::from_flag(self.parallel, workers)
    }

    /// Packets per run under `--smoke`.
    pub const SMOKE_PACKETS: usize = 2_000;
}

/// Diagnostic scheduler override from the command line:
/// `--scheduler=reference` selects the retained tick-stepper,
/// `--scheduler=event` (or no flag) the event-driven default. Reports
/// and figure stdout are bit-identical either way — the knob exists so
/// `scripts/bench.sh` can measure the empty-epoch tax the event-driven
/// scheduler removes (the `[sched]` stderr line and wall-clock are the
/// only things that move).
pub fn scheduler_from_args() -> engine::Scheduler {
    if std::env::args().any(|a| a == "--scheduler=reference") {
        engine::Scheduler::ReferenceTick
    } else {
        engine::Scheduler::EventDriven
    }
}

/// Prints the process-wide engine scheduler totals
/// ([`engine::sched_totals`]) as one `[sched]` line — to **stderr**, so
/// the committed golden stdout of every figure stays byte-stable while
/// the empty-epoch tax is still visible in every run's output. Binaries
/// that never construct an engine print zeros, which is the honest
/// number.
pub fn eprint_sched_totals(figure: &str) {
    let t = engine::sched_totals();
    let eff = if t.epochs_dispatched == 0 {
        100.0
    } else {
        100.0 * t.epochs_with_work as f64 / t.epochs_dispatched as f64
    };
    eprintln!(
        "[sched] {figure}: epochs_dispatched={} epochs_with_work={} \
         events_processed={} epoch_efficiency={eff:.1}%",
        t.epochs_dispatched, t.epochs_with_work, t.events_processed
    );
}

/// Median of each percentile row across runs: the paper's "values show
/// the median of 50 runs" aggregation for [p75, p90, p95, p99, mean].
pub fn median_rows(rows: &[[f64; 5]]) -> [f64; 5] {
    assert!(!rows.is_empty(), "need at least one run");
    let mut out = [0.0; 5];
    for (i, slot) in out.iter_mut().enumerate() {
        let col: Vec<f64> = rows.iter().map(|r| r[i]).collect();
        *slot = Summary::from_samples(col).expect("non-empty").median();
    }
    out
}

/// Formats a [p75, p90, p95, p99, mean] row in microseconds.
pub fn fmt_us_row(row: &[f64; 5]) -> String {
    format!(
        "p75={:>8.1}  p90={:>8.1}  p95={:>8.1}  p99={:>8.1}  mean={:>8.1}",
        row[0] / 1e3,
        row[1] / 1e3,
        row[2] / 1e3,
        row[3] / 1e3,
        row[4] / 1e3
    )
}

/// Per-percentile improvement `base - new` in the same unit.
pub fn improvement(base: &[f64; 5], new: &[f64; 5]) -> [f64; 5] {
    let mut out = [0.0; 5];
    for i in 0..5 {
        out[i] = base[i] - new[i];
    }
    out
}

/// Per-percentile speedup in percent (Fig. 1's y-axis).
pub fn speedup_percent(base: &[f64; 5], new: &[f64; 5]) -> [f64; 5] {
    let mut out = [0.0; 5];
    for i in 0..5 {
        out[i] = xstats::percentile::speedup_percent(base[i], new[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_rows_takes_per_column_median() {
        let rows = [
            [1.0, 10.0, 100.0, 1000.0, 5.0],
            [3.0, 30.0, 300.0, 3000.0, 15.0],
            [2.0, 20.0, 200.0, 2000.0, 10.0],
        ];
        assert_eq!(median_rows(&rows), [2.0, 20.0, 200.0, 2000.0, 10.0]);
    }

    #[test]
    fn improvement_and_speedup() {
        let base = [100.0, 100.0, 100.0, 100.0, 100.0];
        let new = [80.0, 90.0, 95.0, 99.0, 100.0];
        assert_eq!(improvement(&base, &new)[0], 20.0);
        assert_eq!(speedup_percent(&base, &new)[0], 20.0);
        assert_eq!(speedup_percent(&base, &new)[4], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn median_rows_rejects_empty() {
        median_rows(&[]);
    }
}
