//! Scale study: the multi-queue KVS at millions of keys and millions of
//! requests, with a bounded-memory report path.
//!
//! Everything before this figure collected per-request latency `Vec`s
//! and recomputed the O(n) Zipf zeta sum per client — both fine at
//! smoke scale, both wrong at 2^21 keys x 10^6 requests. This binary is
//! the proof that the fixes compose end to end:
//!
//! 1. **Closed-loop capacity at scale** — `StripedHot` placement with
//!    the cost-aware hot-set migrator over a store many times the LLC,
//!    so the hot set spans far more than one slice and migration earns
//!    its keep through real eviction traffic.
//! 2. **Open-loop tail latency at scale** — the same store driven two
//!    ways: a Poisson [`trafficgen::OpenLoopGen`] and a
//!    [`trafficgen::TraceReplay`] of a v2 tracefile synthesized from
//!    that same Poisson process (recorded through
//!    `tracefile::write_trace_v2`, read back, replayed). Completion
//!    latencies stream into one [`xstats::LogHist`] per queue
//!    ([`kvs::CompletionSink`]); the report path holds a few KiB of
//!    sketch state however many requests run — no per-request `Vec`.
//! 3. **Sketch-vs-exact differential** — a subsampled run keeps the
//!    exact completion series, and the sketch quantiles are checked
//!    (hard assert) against the rank-`ceil(q*n)` order statistics
//!    within the sketch's documented relative-error bound.
//! 4. **Large values under memory pressure** — the §8 scattered-value
//!    store at a working set larger than the LLC, near-slice `SliceSet`
//!    vs. `Normal`, sharing one [`trafficgen::ZipfConstants`] setup
//!    across both placements.
//!
//! Scale: `fig_scale_kvs [runs] [ops] [log2_keys] [--cores=N]
//! [--rate=OPS_PER_S] [--smoke] [--parallel] [--scheduler=...]`.
//! Default full scale is 2^21 keys x 10^6 ops; `--smoke` shrinks to
//! 2^14 x 2000 for CI. Output is bit-identical across
//! {serial, parallel} x {event-driven, reference-tick}.

use engine::Execution;
use kvs::proto::RequestGen;
use kvs::server::{flow_for_queue, run_server, MigrationMode, ServerConfig};
use kvs::store::{KvStore, Placement};
use kvs::{
    run_openloop, run_openloop_streaming, CompletionSink, LargeKvStore, LargePlacement,
    OpenLoopConfig, OpenLoopReport,
};
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port};
use rte::steering::{Rss, Steering};
use slice_aware::alloc::SliceAllocator;
use trafficgen::tracefile::{read_trace_timed_bytes, write_trace_v2};
use trafficgen::{
    Arrivals, CampusTrace, OpenLoopGen, SizeMix, TimedPacket, TraceReplay, ZipfConstants, ZipfGen,
};
use xstats::report::{f, Table};
use xstats::LogHist;

/// Sketch relative-error bound for the streamed latency quantiles.
const ALPHA: f64 = 0.01;

/// Total open-loop arrival rate over all cores (ops/s). Well below the
/// multi-queue capacity, so the rows measure service tails rather than
/// queueing collapse.
const DEFAULT_RATE: f64 = 8e6;

fn flag<T: std::str::FromStr>(args: &[String], prefix: &str) -> Option<T> {
    args.iter()
        .find_map(|a| a.strip_prefix(prefix).and_then(|v| v.parse().ok()))
}

/// The §3 hot-pool sizing rule shared with fig08: half a slice spread
/// over the cores, capped at an eighth of each core's key class.
fn hot_per_core(n_values: usize, cores: usize) -> usize {
    (20_000 / cores).min(n_values / cores / 8).max(1)
}

/// Builds the scale machine: DRAM sized for the slice-aware carving
/// (~9x the store) plus headroom for pools and rings.
fn scale_machine(store_bytes: usize) -> (Machine, usize) {
    let region_bytes = (store_bytes * 9).max(64 << 20);
    let m = Machine::new(
        MachineConfig::haswell_e5_2667_v3()
            .with_dram_capacity(region_bytes + store_bytes + (256 << 20)),
    );
    (m, region_bytes)
}

// ---------------------------------------------------------------------
// Section 1: closed-loop capacity with the cost-aware migrator.
// ---------------------------------------------------------------------

/// One closed-loop run at scale: StripedHot placement, scrambled Zipf
/// clients (the popular keys start cold — only migration can move them
/// into the slice-local hot pools), warm-up pass, measured pass.
fn run_closed(
    n_values: usize,
    cores: usize,
    requests: usize,
    execution: Execution,
    migration: MigrationMode,
) -> Result<kvs::ServerReport, Box<dyn std::error::Error>> {
    let (mut m, region_bytes) = scale_machine(n_values * 64);
    let placement = Placement::StripedHot {
        slices: (0..cores).map(|c| m.closest_slice(c)).collect(),
        hot_per_core: hot_per_core(n_values, cores),
    };
    let region = m.mem_mut().alloc(region_bytes, 1 << 20)?;
    let hash = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| hash.slice_of(pa));
    let store = KvStore::build(&mut m, &mut alloc, n_values, placement)?;
    let mut pool = MbufPool::create(&mut m, (1024 * cores) as u32, 128, 2048)?;
    let mut port = Port::new(0, Steering::Rss(Rss::new(cores)), 256);
    let base = trafficgen::FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
    // One shared zeta setup for every client (the O(n)-per-client fix);
    // scrambled ranks so the Zipf head starts cold in every slice.
    let zc = ZipfConstants::shared((n_values / cores) as u64, 0.99);
    let mut gens: Vec<RequestGen> = (0..cores)
        .map(|q| {
            let flow = flow_for_queue(&mut port, base, q);
            let keygen = ZipfGen::from_constants(&zc, 4242 + q as u64);
            RequestGen::new(keygen, 950, 77 + q as u64)
                .with_flow(flow)
                .with_key_partition(cores as u32, q as u32)
                .with_key_scramble(4300 + q as u64)
        })
        .collect();
    let mut policy = FixedHeadroom(128);
    let mut cfg = ServerConfig::fig8(requests, 950, 1)
        .with_cores(cores)
        .with_execution(execution);
    cfg.scheduler = bench::scheduler_from_args();
    cfg.migration = migration;
    let warm = ServerConfig {
        requests: requests / 4,
        ..cfg.clone()
    };
    run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &warm,
    );
    Ok(run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &cfg,
    ))
}

fn closed_section(
    n_values: usize,
    cores: usize,
    requests: usize,
    execution: Execution,
    epoch: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    // The migrator needs epoch boundaries to act on; guarantee a few
    // per core even at smoke scale.
    let requests = requests.max(cores * epoch * 3);
    println!(
        "Closed loop — StripedHot, scrambled Zipf(0.99), epoch {epoch}, \
         {requests} requests (warm-up {}):\n",
        requests / 4
    );
    let mut t = Table::new([
        "Config",
        "HotHit%",
        "MTPS",
        "Cycles/req",
        "Migrated",
        "Vetoed",
        "AtLoss",
    ]);
    let mut reports = Vec::new();
    for (label, migration) in [
        ("StripedHot (static)", MigrationMode::Off),
        ("StripedHot+cost-aware", MigrationMode::CostAware { epoch }),
    ] {
        let rep = run_closed(n_values, cores, requests, execution, migration)?;
        t.row([
            label.to_string(),
            f(rep.hot_hit_rate() * 100.0, 1),
            f(rep.tps / 1e6, 3),
            f(rep.cycles_per_request, 1),
            rep.migrated.to_string(),
            rep.swaps_vetoed.to_string(),
            rep.swaps_at_loss.to_string(),
        ]);
        reports.push(rep);
    }
    println!("{}", t.render());
    let [stat, aware] = &reports[..] else {
        unreachable!()
    };
    println!(
        "cost-aware vs static: {:+.1} pts hot-hit-rate, {:+.1}% TPS, \
         {} swaps at a projected loss\n",
        (aware.hot_hit_rate() - stat.hot_hit_rate()) * 100.0,
        (aware.tps - stat.tps) / stat.tps * 100.0,
        aware.swaps_at_loss
    );
    Ok(())
}

// ---------------------------------------------------------------------
// Section 2: open-loop tail latency, streamed into per-queue sketches.
// ---------------------------------------------------------------------

/// The bounded report path: one latency sketch per RX queue plus the
/// last completion timestamp (for completion-window goodput). Fixed
/// size — a few KiB per queue — at any request count.
struct SketchSink {
    per_queue: Vec<LogHist>,
    last_completion_ns: f64,
}

impl SketchSink {
    fn new(cores: usize) -> Self {
        Self {
            per_queue: (0..cores).map(|_| LogHist::latency_ns(ALPHA)).collect(),
            last_completion_ns: 0.0,
        }
    }

    /// All queues merged into one sketch (for the aggregate quantiles).
    fn merged(&self) -> LogHist {
        let mut all = self.per_queue[0].clone();
        for q in &self.per_queue[1..] {
            all.merge(q);
        }
        all
    }
}

impl CompletionSink for SketchSink {
    fn record(&mut self, queue: usize, completion_ns: f64, latency_ns: f64) {
        self.per_queue[queue].record(latency_ns);
        if completion_ns > self.last_completion_ns {
            self.last_completion_ns = completion_ns;
        }
    }
}

/// Open-loop config shared by every drive row and the differential run.
fn open_cfg(ops: usize, cores: usize, execution: Execution) -> OpenLoopConfig {
    let mut cfg = OpenLoopConfig::new(ops, 42).with_cores(cores);
    cfg.execution = execution;
    cfg.scheduler = bench::scheduler_from_args();
    cfg
}

/// Builds the machine/store/port and runs one open-loop experiment,
/// streaming completions into `sink` (fresh port per run — open-loop
/// matching requires it).
fn run_open(
    n_values: usize,
    cfg: &OpenLoopConfig,
    arrivals: &mut dyn Arrivals,
    sink: &mut SketchSink,
) -> OpenLoopReport {
    let (mut m, region_bytes) = scale_machine(n_values * 64);
    let placement = Placement::StripedHot {
        slices: (0..cfg.cores).map(|c| m.closest_slice(c)).collect(),
        hot_per_core: hot_per_core(n_values, cfg.cores),
    };
    let region = m.mem_mut().alloc(region_bytes, 1 << 20).unwrap();
    let hash = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| hash.slice_of(pa));
    let store = KvStore::build(&mut m, &mut alloc, n_values, placement).unwrap();
    let mut pool = MbufPool::create(&mut m, (8 * cfg.cores * cfg.queue_depth) as u32, 128, 2048)
        .expect("pool sized to the rings");
    let mut port = Port::new(0, Steering::Rss(Rss::new(cfg.cores)), cfg.queue_depth);
    let mut policy = FixedHeadroom(128);
    run_openloop_streaming(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        arrivals,
        cfg,
        sink,
    )
}

/// Synthesizes a v2 tracefile from a Poisson arrival process (CampusTrace
/// packet specs, arrivals quantized to the format's integer ns), then
/// reads it back into a [`TraceReplay`] source. The round trip through
/// the on-disk format is the point: the replay row is driven by exactly
/// what a recorded trace would contain.
fn replay_from_recorded_poisson(ops: usize, rate: f64) -> TraceReplay {
    let mut gen = OpenLoopGen::poisson(rate, 7);
    let mut campus = CampusTrace::new(SizeMix::campus(), 64, 7);
    let timed: Vec<TimedPacket> = campus
        .take(ops)
        .into_iter()
        .map(|spec| TimedPacket {
            spec,
            arrival_ns: gen.next_arrival_ns() as u64,
        })
        .collect();
    let mut buf = Vec::new();
    write_trace_v2(&mut buf, &timed).expect("in-memory trace write");
    TraceReplay::new(&read_trace_timed_bytes(&buf).expect("own trace reads back"))
}

fn open_section(n_values: usize, ops: usize, cores: usize, rate: f64, execution: Execution) {
    println!(
        "Open loop — StripedHot, {ops} ops at {:.1} Mops/s over {cores} queues, \
         streamed into per-queue LogHist(alpha={ALPHA}):\n",
        rate / 1e6
    );
    let mut t = Table::new([
        "Drive",
        "Completed",
        "Goodput (Mops/s)",
        "p50 (us)",
        "p99 (us)",
        "p999 (us)",
        "max (us)",
    ]);
    let mut per_queue_lines = Vec::new();
    let mut sketch_note = None;
    for drive in ["poisson", "trace-replay(v2)"] {
        let cfg = open_cfg(ops, cores, execution);
        let mut sink = SketchSink::new(cores);
        let rep = match drive {
            "poisson" => {
                let mut arr = OpenLoopGen::poisson(rate, 7);
                run_open(n_values, &cfg, &mut arr, &mut sink)
            }
            _ => {
                let mut arr = replay_from_recorded_poisson(ops, rate);
                run_open(n_values, &cfg, &mut arr, &mut sink)
            }
        };
        let all = sink.merged();
        assert_eq!(
            all.count() + all.nonfinite(),
            rep.completed,
            "every completion must reach the sketches"
        );
        let goodput = if sink.last_completion_ns > 0.0 {
            rep.completed as f64 / (sink.last_completion_ns / 1e9) / 1e6
        } else {
            0.0
        };
        t.row([
            drive.to_string(),
            rep.completed.to_string(),
            f(goodput, 3),
            f(all.quantile(0.50) / 1e3, 3),
            f(all.quantile(0.99) / 1e3, 3),
            f(all.quantile(0.999) / 1e3, 3),
            f(all.max() / 1e3, 3),
        ]);
        per_queue_lines.push(format!(
            "  {drive:<16} per-queue p99 (us): {}",
            sink.per_queue
                .iter()
                .map(|s| f(s.quantile(0.99) / 1e3, 3))
                .collect::<Vec<_>>()
                .join("  ")
        ));
        sketch_note.get_or_insert_with(|| {
            (
                all.bucket_count(),
                cores,
                all.underflow(),
                all.overflow(),
                all.nonfinite(),
            )
        });
    }
    println!("{}", t.render());
    for line in per_queue_lines {
        println!("{line}");
    }
    let (buckets, nq, under, over, nonfinite) = sketch_note.expect("two drive rows ran");
    println!(
        "report path held {nq} sketches x {buckets} buckets (fixed, ~8 B each) — \
         no per-request Vec; underflow {under}, overflow {over}, non-finite {nonfinite}\n"
    );
}

// ---------------------------------------------------------------------
// Section 3: sketch-vs-exact differential on a subsampled run.
// ---------------------------------------------------------------------

fn differential_section(n_values: usize, ops: usize, cores: usize, rate: f64, exec: Execution) {
    let sub = (ops / 8).clamp(500, 50_000);
    println!(
        "Differential — exact vs sketch on a {sub}-op subsample \
         (bound: relative error <= {:.1}%):\n",
        ALPHA * 100.0
    );
    let cfg = open_cfg(sub, cores, exec);
    let (mut m, region_bytes) = scale_machine(n_values * 64);
    let placement = Placement::StripedHot {
        slices: (0..cores).map(|c| m.closest_slice(c)).collect(),
        hot_per_core: hot_per_core(n_values, cores),
    };
    let region = m.mem_mut().alloc(region_bytes, 1 << 20).unwrap();
    let hash = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| hash.slice_of(pa));
    let store = KvStore::build(&mut m, &mut alloc, n_values, placement).unwrap();
    let mut pool =
        MbufPool::create(&mut m, (8 * cores * cfg.queue_depth) as u32, 128, 2048).unwrap();
    let mut port = Port::new(0, Steering::Rss(Rss::new(cores)), cfg.queue_depth);
    let mut policy = FixedHeadroom(128);
    let mut arr = OpenLoopGen::poisson(rate, 7);
    // The exact (Vec-collecting) path the sketch replaced.
    let rep = run_openloop(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut arr,
        &cfg,
    );
    let mut exact = rep.latencies();
    exact.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mut sketch = LogHist::latency_ns(ALPHA);
    for &l in &exact {
        sketch.record(l);
    }
    let mut t = Table::new(["Quantile", "exact (us)", "sketch (us)", "rel err (%)"]);
    for (label, q) in [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)] {
        // The sketch's bound is against the rank-ceil(q*n) order
        // statistic — compare against exactly that.
        let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
        let ex = exact[rank - 1];
        let sk = sketch.quantile(q);
        let rel = (sk - ex).abs() / ex;
        assert!(
            rel <= ALPHA * 1.000001,
            "{label}: sketch {sk} vs exact {ex} — relative error {rel} \
             exceeds the documented bound {ALPHA}"
        );
        t.row([
            label.to_string(),
            f(ex / 1e3, 4),
            f(sk / 1e3, 4),
            f(rel * 100.0, 3),
        ]);
    }
    println!("{}", t.render());
    println!("all quantiles within the sketch's documented bound (asserted)\n");
}

// ---------------------------------------------------------------------
// Section 4: large values under memory pressure.
// ---------------------------------------------------------------------

fn large_section(n_large: usize, value_size: usize, draws: usize) {
    let store_mb = n_large * value_size / (1 << 20);
    println!(
        "Large values under memory pressure — {n_large} x {value_size} B scattered \
         values ({store_mb} MB working set), Zipf(0.99) GETs on core 0:\n"
    );
    // One zeta setup serves both placements (identical key streams by
    // construction — the shared-constants contract).
    let zc = ZipfConstants::shared(n_large as u64, 0.99);
    let mut t = Table::new(["Placement", "mean (ns/GET)", "p50 (ns)", "p99 (ns)"]);
    let mut means = Vec::new();
    for label in ["normal", "near-slice"] {
        let store_bytes = n_large * value_size;
        let (mut m, region_bytes) = scale_machine(store_bytes);
        let placement = match label {
            "normal" => LargePlacement::Normal,
            _ => LargePlacement::SliceSet(vec![m.closest_slice(0)]),
        };
        let region = m.mem_mut().alloc(region_bytes, 1 << 20).unwrap();
        let hash = XorSliceHash::haswell_8slice();
        let mut alloc = SliceAllocator::new(region, move |pa| hash.slice_of(pa));
        let store = LargeKvStore::build(&mut alloc, n_large, value_size, &placement).unwrap();
        let freq_ghz = m.config().freq_ghz;
        let mut buf = vec![0u8; value_size];
        // Warm pass with the same draw count, then the measured pass —
        // the timed GETs run against a populated cache hierarchy.
        let mut keygen = ZipfGen::from_constants(&zc, 9090);
        for _ in 0..draws {
            let key = keygen.next_rank() as usize;
            store.get(&mut m, 0, key, &mut buf);
        }
        let mut sketch = LogHist::latency_ns(ALPHA);
        for _ in 0..draws {
            let key = keygen.next_rank() as usize;
            let cycles = store.get(&mut m, 0, key, &mut buf);
            sketch.record(cycles as f64 / freq_ghz);
        }
        means.push((sketch.mean(), sketch.quantile(0.50)));
        t.row([
            label.to_string(),
            f(sketch.mean(), 1),
            f(sketch.quantile(0.50), 1),
            f(sketch.quantile(0.99), 1),
        ]);
    }
    println!("{}", t.render());
    let [(normal_mean, normal_p50), (near_mean, near_p50)] = &means[..] else {
        unreachable!()
    };
    println!(
        "near-slice vs normal: {:+.1}% mean, {:+.1}% p50 — single-slice scatter \
         serves the cached Zipf head at near-slice latency but caps effective \
         LLC capacity at one slice, so whether the mean wins depends on the \
         working set vs the LLC (the fig08 capacity lesson at §8 value sizes)\n",
        (near_mean - normal_mean) / normal_mean * 100.0,
        (near_p50 - normal_p50) / normal_p50 * 100.0
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(1, 1_000_000);
    let args: Vec<String> = std::env::args().collect();
    let default_log2 = if scale.smoke { 14 } else { 21 };
    let log2_n: u32 = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_log2);
    let n_values = 1usize << log2_n;
    let cores: usize = flag(&args, "--cores=").unwrap_or(4);
    let rate: f64 = flag(&args, "--rate=").unwrap_or(DEFAULT_RATE);
    let execution = scale.execution(cores);
    let ops = scale.packets;
    // Smoke shrinks every scale knob; full scale defaults to a few
    // epochs over a million requests and a 32 MB large-value set.
    let (epoch, n_large, large_draws) = if scale.smoke {
        (512, 2_048, 2_000)
    } else {
        (4_096, 32_768, 100_000)
    };
    // NOTE: --parallel and --scheduler deliberately do not change this
    // banner — the golden regression diffs all four mode combinations
    // against the same snapshot.
    println!(
        "Scale study — multi-queue KVS, {cores} core(s), 2^{log2_n} x 64 B values \
         ({} MB store), {ops} ops/row\n",
        n_values * 64 / (1 << 20)
    );
    closed_section(n_values, cores, ops, execution, epoch)?;
    open_section(n_values, ops, cores, rate, execution);
    differential_section(n_values, ops, cores, rate, execution);
    large_section(n_large, 1024, large_draws);
    println!(
        "The report path is O(sketch) at any scale: quantiles stream through \
         per-queue log-histograms (error bound asserted above), Zipf setup is \
         shared per (n, theta), and the replay row reproduces a recorded v2 \
         trace's arrival structure exactly. See EXPERIMENTS.md (Scale study)."
    );
    bench::eprint_sched_totals("fig_scale_kvs");
    Ok(())
}
