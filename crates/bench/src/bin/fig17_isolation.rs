//! Fig. 17: slice isolation vs. Intel CAT way isolation under a noisy
//! neighbour (Skylake, §7).
//!
//! Three scenarios, reads and writes: NoCAT (shared LLC), 2 ways isolated
//! via CAT (2/11 ≈ 18% of the LLC), and slice-0 isolation via slice-aware
//! allocation (1/18 ≈ 5.6% of the LLC).

use llc_sim::hash::{FoldedSliceHash, SliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use llc_sim::AccessKind;
use slice_aware::isolation::{setup_isolation, IsolationScenario};
use slice_aware::workload::{random_access, warm_buffer};
use xstats::report::{f, Table};

/// Paper: 2 MB = three-fourths of a slice plus the L2 on the Gold 6134.
/// Under an LRU L2 the 2 MB set does not split cleanly between L2 and the
/// slice (lines rotate through both), so a second, fits-one-slice size is
/// reported as well; see EXPERIMENTS.md.
const MAIN_SIZES: &[(&str, usize)] = &[
    ("2 MB (paper)", 2 * 1024 * 1024),
    ("1.25 MB (fits slice)", 1_310_720),
];
/// The neighbour streams through more than the whole LLC (24.75 MB).
const NOISE_BYTES: usize = 48 * 1024 * 1024;

fn run_scenario(
    scenario: IsolationScenario,
    kind: AccessKind,
    ops: usize,
    main_bytes: usize,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut m = Machine::new(MachineConfig::skylake_gold_6134().with_dram_capacity(2 << 30));
    let region = m.mem_mut().alloc(1 << 30, 1 << 20)?;
    let hash = FoldedSliceHash::skylake_18slice();
    let mut alloc = slice_aware::alloc::SliceAllocator::new(region, move |pa| hash.slice_of(pa));
    let setup = setup_isolation(&mut m, &mut alloc, scenario, 0, 1, main_bytes, NOISE_BYTES)?;
    warm_buffer(&mut m, 0, &setup.main_buf);
    warm_buffer(&mut m, 1, &setup.noise_buf);
    // Interleave: the neighbour runs 4x hotter than the main app.
    let quantum = 50;
    let mut total = 0u64;
    let mut done = 0;
    let mut round = 0u64;
    while done < ops {
        let n = quantum.min(ops - done);
        total += random_access(&mut m, 0, &setup.main_buf, n, kind, 300 + round);
        random_access(
            &mut m,
            1,
            &setup.noise_buf,
            4 * quantum,
            AccessKind::Read,
            700 + round,
        );
        done += n;
        round += 1;
    }
    // Execution time in seconds at 3.2 GHz, scaled per 10k ops like the
    // paper's absolute plot.
    Ok(total as f64 / (3.2e9) * (10_000.0 / ops as f64))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(1, 40_000);
    let scenarios = [
        ("NoCAT", IsolationScenario::NoCat),
        ("2W Isolated", IsolationScenario::WayIsolated { ways: 2 }),
        (
            "Slice-0 Isolated",
            IsolationScenario::SliceIsolated { slice: 0 },
        ),
    ];
    for &(size_name, main_bytes) in MAIN_SIZES {
        println!(
            "Fig. 17 — main app {size_name} vs noisy neighbour (Skylake), {} ops/scenario\n",
            scale.packets
        );
        let mut results = Vec::new();
        let mut t = Table::new(["Scenario", "Read (ms/10k ops)", "Write (ms/10k ops)"]);
        for (name, sc) in scenarios {
            let r = run_scenario(sc, AccessKind::Read, scale.packets, main_bytes)?;
            let w = run_scenario(sc, AccessKind::Write, scale.packets, main_bytes)?;
            results.push((name, r, w));
            t.row([name.to_string(), f(r * 1e3, 3), f(w * 1e3, 3)]);
        }
        println!("{}", t.render());
        let way = results[1];
        let slice = results[2];
        println!(
            "slice isolation vs 2-way CAT: read {:+.1}%, write {:+.1}%\n",
            (way.1 - slice.1) / way.1 * 100.0,
            (way.2 - slice.2) / way.2 * 100.0
        );
    }
    println!(
        "Paper Fig. 17: slice isolation beats 2-way CAT by ~11.5% (read) and ~11.8% \
         (write) while using 5.6% of the LLC instead of 18%. Under a strict-LRU L2 \
         the paper's 2 MB set overflows the 1.375 MB slice (lines rotate between L2 \
         and LLC rather than splitting), which is why the fits-one-slice size is \
         where the paper's ordering appears; see EXPERIMENTS.md."
    );
    bench::eprint_sched_totals("fig17_isolation");
    Ok(())
}
