//! §6 portability check: CacheDirector on the Skylake machine.
//!
//! The paper ports its code to the Xeon Gold 6134 and argues
//! CacheDirector "is still expected to be beneficial, but with lower
//! improvements — as the size of L2 has been increased", and that with
//! more slices than cores each core should target its preferred *set* of
//! slices (Table 4). This binary runs the Fig. 14 experiment on the
//! simulated Skylake part, sweeping how many preferred slices
//! CacheDirector targets (1 = primary only, 3 = primary + secondaries).

use llc_sim::machine::{Machine, MachineConfig};
use nfv::runtime::{
    ChainSpec, HeadroomMode, RunConfig, RunResult, SetupError, SteeringKind, Testbed,
};
use trafficgen::{ArrivalSchedule, CampusTrace, SizeMix};
use xstats::report::{f, Table};

fn one(
    headroom: HeadroomMode,
    run: u64,
    packets: usize,
    parallel: bool,
) -> Result<RunResult, SetupError> {
    let mut cfg = RunConfig::paper_defaults(
        ChainSpec::RouterNaptLb {
            routes: 3120,
            offload: true,
        },
        SteeringKind::FlowDirector,
        headroom,
    );
    cfg.seed ^= run;
    cfg.execution = engine::Execution::from_flag(parallel, cfg.cores);
    let m = Machine::new(MachineConfig::skylake_gold_6134().with_seed(cfg.seed));
    let mut tb = Testbed::on_machine(cfg, m)?;
    let mut trace = CampusTrace::new(SizeMix::campus(), 10_000, 42 + run);
    let mut sched = ArrivalSchedule::constant_gbps(100.0, 670.0);
    for _ in 0..packets {
        let t = sched.next_arrival_ns();
        let spec = trace.next_packet();
        tb.offer(&spec.flow, spec.size, t);
    }
    Ok(tb.finish())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(5, 120_000);
    println!(
        "§6 — Router-NAPT-LB @ 100 Gbps on Skylake (Xeon Gold 6134); median of {} runs x {} pkts\n",
        scale.runs, scale.packets
    );
    let configs = [
        ("stock DPDK", HeadroomMode::Stock),
        (
            "CacheDirector (primary only)",
            HeadroomMode::CacheDirector {
                preferred_slices: 1,
            },
        ),
        (
            "CacheDirector (primary+secondary)",
            HeadroomMode::CacheDirector {
                preferred_slices: 3,
            },
        ),
    ];
    let mut t = Table::new([
        "Configuration",
        "p90 (us)",
        "p95 (us)",
        "p99 (us)",
        "Mean (us)",
    ]);
    let mut rows = Vec::new();
    for (name, headroom) in configs {
        let mut per_run = Vec::with_capacity(scale.runs);
        for r in 0..scale.runs as u64 {
            let res = one(headroom, r, scale.packets, scale.parallel)?;
            per_run.push(res.summary().ok_or("no latencies recorded")?.paper_row());
        }
        let row = bench::median_rows(&per_run);
        t.row([
            name.to_string(),
            f(row[1] / 1e3, 1),
            f(row[2] / 1e3, 1),
            f(row[3] / 1e3, 1),
            f(row[4] / 1e3, 1),
        ]);
        rows.push((name, row));
    }
    println!("{}", t.render());
    let stock = rows[0].1;
    for (name, row) in &rows[1..] {
        println!(
            "{name}: p99 {:+.1}% vs stock",
            (row[3] - stock[3]) / stock[3] * 100.0
        );
    }
    println!(
        "\nPaper §6: CacheDirector remains beneficial on Skylake but less so than on \
         Haswell (larger L2 absorbs more of the header traffic; non-inclusive LLC); \
         targeting the Table-4 preferred set raises the placement rate on an \
         18-slice part."
    );
    bench::eprint_sched_totals("skylake_nfv");
    Ok(())
}
