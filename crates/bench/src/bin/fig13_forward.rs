//! Fig. 13 + Table 3 (row 1): simple forwarding on 8 cores, campus-mix
//! packets at 100 Gbps with RSS — latency percentiles, per-percentile
//! improvement, and throughput.

use nfv::runtime::{
    run_experiment, ChainSpec, HeadroomMode, RunConfig, RunResult, SetupError, SteeringKind,
};
use trafficgen::{ArrivalSchedule, CampusTrace, SizeMix};
use xstats::report::{f, Table};

fn one(
    headroom: HeadroomMode,
    run: u64,
    packets: usize,
    parallel: bool,
) -> Result<RunResult, SetupError> {
    let mut cfg = RunConfig::paper_defaults(ChainSpec::MacSwap, SteeringKind::Rss, headroom);
    cfg.seed ^= run;
    cfg.execution = engine::Execution::from_flag(parallel, cfg.cores);
    let mut trace = CampusTrace::new(SizeMix::campus(), 10_000, 42 + run);
    let mut sched = ArrivalSchedule::constant_gbps(100.0, 670.0);
    run_experiment(cfg, &mut trace, &mut sched, packets)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(10, 150_000);
    println!(
        "Fig. 13 — forwarding, campus mix @ 100 Gbps, RSS, 8 cores; median of {} runs x {} pkts\n",
        scale.runs, scale.packets
    );
    let mut rows_stock = Vec::new();
    let mut rows_cd = Vec::new();
    let mut tput_stock = Vec::new();
    let mut tput_cd = Vec::new();
    for run in 0..scale.runs as u64 {
        let s = one(HeadroomMode::Stock, run, scale.packets, scale.parallel)?;
        rows_stock.push(s.summary().ok_or("no latencies recorded")?.paper_row());
        tput_stock.push(s.achieved_gbps);
        let c = one(
            HeadroomMode::CacheDirector {
                preferred_slices: 1,
            },
            run,
            scale.packets,
            scale.parallel,
        )?;
        rows_cd.push(c.summary().ok_or("no latencies recorded")?.paper_row());
        tput_cd.push(c.achieved_gbps);
    }
    let stock = bench::median_rows(&rows_stock);
    let cd = bench::median_rows(&rows_cd);
    let imp = bench::improvement(&stock, &cd);
    let mut t = Table::new([
        "Percentile",
        "DPDK (us)",
        "DPDK+CacheDirector (us)",
        "Improvement (us)",
    ]);
    for (i, name) in ["75th", "90th", "95th", "99th", "Mean"].iter().enumerate() {
        t.row([
            name.to_string(),
            f(stock[i] / 1e3, 1),
            f(cd[i] / 1e3, 1),
            f(imp[i] / 1e3, 1),
        ]);
    }
    println!("{}", t.render());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "Table 3 row 1 — throughput: DPDK {:.2} Gbps, +CacheDirector {:.2} Gbps \
         (improvement {:.0} Mbps)",
        mean(&tput_stock),
        mean(&tput_cd),
        (mean(&tput_cd) - mean(&tput_stock)) * 1e3
    );
    println!(
        "\nPaper: throughput 76.58 Gbps (+31 Mbps with CacheDirector); tail improvements \
         grow with the percentile under RSS."
    );
    bench::eprint_sched_totals("fig13_forward");
    Ok(())
}
