//! Figs. 1 & 14 + Table 3 (row 2): the stateful service chain
//! Router → NAPT → LB on 8 cores, campus mix at 100 Gbps, FlowDirector
//! with hardware offloading — latency CDF, per-percentile improvement,
//! the Fig. 1 speedup bars and the throughput row.

use nfv::runtime::{
    run_experiment, ChainSpec, HeadroomMode, RunConfig, RunResult, SetupError, SteeringKind,
};
use trafficgen::{ArrivalSchedule, CampusTrace, SizeMix};
use xstats::report::{f, Table};
use xstats::Cdf;

fn one(
    headroom: HeadroomMode,
    run: u64,
    packets: usize,
    parallel: bool,
) -> Result<RunResult, SetupError> {
    let mut cfg = RunConfig::paper_defaults(
        ChainSpec::RouterNaptLb {
            routes: 3120,
            offload: true,
        },
        SteeringKind::FlowDirector,
        headroom,
    );
    cfg.seed ^= run;
    cfg.execution = engine::Execution::from_flag(parallel, cfg.cores);
    let mut trace = CampusTrace::new(SizeMix::campus(), 10_000, 42 + run);
    let mut sched = ArrivalSchedule::constant_gbps(100.0, 670.0);
    run_experiment(cfg, &mut trace, &mut sched, packets)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(10, 150_000);
    println!(
        "Figs. 1 & 14 — Router-NAPT-LB, campus mix @ 100 Gbps, FlowDirector+offload, \
         8 cores; median of {} runs x {} pkts\n",
        scale.runs, scale.packets
    );
    let mut rows_stock = Vec::new();
    let mut rows_cd = Vec::new();
    let mut tput = (Vec::new(), Vec::new());
    let mut last: Option<(RunResult, RunResult)> = None;
    for run in 0..scale.runs as u64 {
        let s = one(HeadroomMode::Stock, run, scale.packets, scale.parallel)?;
        let c = one(
            HeadroomMode::CacheDirector {
                preferred_slices: 1,
            },
            run,
            scale.packets,
            scale.parallel,
        )?;
        rows_stock.push(s.summary().ok_or("no latencies recorded")?.paper_row());
        rows_cd.push(c.summary().ok_or("no latencies recorded")?.paper_row());
        tput.0.push(s.achieved_gbps);
        tput.1.push(c.achieved_gbps);
        last = Some((s, c));
    }
    let stock = bench::median_rows(&rows_stock);
    let cd = bench::median_rows(&rows_cd);
    let imp = bench::improvement(&stock, &cd);
    let speedup = bench::speedup_percent(&stock, &cd);

    // Fig. 14a: the latency CDF of the last run.
    let (s_last, c_last) = last.ok_or("at least one run required")?;
    println!("Fig. 14a — CDF of DuT latency (last run, 10 points/decade):");
    let cdf_s =
        Cdf::from_samples(s_last.latencies_ns.iter().copied()).ok_or("empty latency samples")?;
    let cdf_c =
        Cdf::from_samples(c_last.latencies_ns.iter().copied()).ok_or("empty latency samples")?;
    let mut t = Table::new(["Latency (us)", "DPDK CDF", "+CacheDirector CDF"]);
    for q in [1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 200.0, 300.0, 400.0, 500.0] {
        t.row([
            f(q, 0),
            f(cdf_s.at(q * 1e3) * 100.0, 1),
            f(cdf_c.at(q * 1e3) * 100.0, 1),
        ]);
    }
    println!("{}", t.render());

    println!("Fig. 14b / Fig. 1 — percentiles (median of runs):");
    let mut t = Table::new([
        "Percentile",
        "DPDK (us)",
        "+CacheDirector (us)",
        "Improvement (us)",
        "Speedup (%)",
    ]);
    for (i, name) in ["75th", "90th", "95th", "99th", "Mean"].iter().enumerate() {
        t.row([
            name.to_string(),
            f(stock[i] / 1e3, 1),
            f(cd[i] / 1e3, 1),
            f(imp[i] / 1e3, 1),
            f(speedup[i], 1),
        ]);
    }
    println!("{}", t.render());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "Table 3 row 2 — throughput: DPDK {:.2} Gbps, +CacheDirector {:.2} Gbps \
         (improvement {:.0} Mbps)",
        mean(&tput.0),
        mean(&tput.1),
        (mean(&tput.1) - mean(&tput.0)) * 1e3
    );
    println!(
        "\nPaper: tail (90-99th) reductions up to 119 us (~21.5%); mean ~6%; throughput \
         75.94 Gbps (+27 Mbps)."
    );
    bench::eprint_sched_totals("fig14_chain");
    Ok(())
}
