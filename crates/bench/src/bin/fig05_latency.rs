//! Fig. 5: access time from core 0 to each LLC slice on Haswell —
//! (a) reads, (b) writes.
//!
//! Executes the §2.2 methodology (fill a cache set, flush, read the
//! conflicting lines, time re-reads of the first eight) on the simulated
//! Xeon E5-2667 v3 and prints cycles per slice for reads and writes.

use llc_sim::machine::{Machine, MachineConfig};
use slice_aware::latency::profile_access_times;
use xstats::report::{f, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(50, 0);
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
    let region = m.mem_mut().alloc(256 << 20, 1 << 20)?;
    let prof = profile_access_times(&mut m, 0, region, scale.runs);
    let mut t = Table::new(["Slice", "Read (cycles)", "Write (cycles)"]);
    for e in &prof.entries {
        t.row([
            e.slice.to_string(),
            f(e.read_cycles, 1),
            f(e.write_cycles, 1),
        ]);
    }
    println!(
        "Fig. 5 — access time from core 0, {} reps per slice\n",
        scale.runs
    );
    println!("{}", t.render());
    let even: Vec<f64> = prof
        .entries
        .iter()
        .filter(|e| e.slice % 2 == 0)
        .map(|e| e.read_cycles)
        .collect();
    let odd: Vec<f64> = prof
        .entries
        .iter()
        .filter(|e| e.slice % 2 == 1)
        .map(|e| e.read_cycles)
        .collect();
    println!(
        "read latency: same-ring slices (even) mean {:.1}, far-ring (odd) mean {:.1}, \
         max saving {:.1} cycles ({:.1} ns at 3.2 GHz)",
        even.iter().sum::<f64>() / even.len() as f64,
        odd.iter().sum::<f64>() / odd.len() as f64,
        prof.max_read_saving(),
        prof.max_read_saving() / 3.2
    );
    println!(
        "\nPaper Fig. 5a: bimodal reads ~34-56 cycles, closest slice saves up to ~20 \
         cycles (6.25 ns); Fig. 5b: writes flat (write-back confirms at L1)."
    );
    bench::eprint_sched_totals("fig05_latency");
    Ok(())
}
