//! Table 1: Intel Xeon E5-2667 v3 cache specification.
//!
//! Regenerates the paper's Table 1 from the simulator's Haswell preset
//! and prints the Skylake (§6) geometry alongside for reference.

use llc_sim::machine::MachineConfig;
use xstats::report::Table;

fn row(t: &mut Table, name: &str, g: llc_sim::machine::CacheGeometry, index_hi: u32) {
    let size = g.capacity_bytes();
    let size_str = if size >= 1024 * 1024 {
        format!("{:.3} MB", size as f64 / (1024.0 * 1024.0))
    } else {
        format!("{} kB", size / 1024)
    };
    t.row([
        name.to_string(),
        size_str,
        g.ways.to_string(),
        g.sets.to_string(),
        format!("{index_hi}-6"),
    ]);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for cfg in [
        MachineConfig::haswell_e5_2667_v3(),
        MachineConfig::skylake_gold_6134(),
    ] {
        println!("== {} ==", cfg.name);
        let mut t = Table::new(["Cache Level", "Size", "#Ways", "#Sets", "Index-bits[range]"]);
        row(
            &mut t,
            "LLC-Slice",
            cfg.llc_slice,
            5 + cfg.llc_slice.sets.trailing_zeros(),
        );
        row(&mut t, "L2", cfg.l2, 5 + cfg.l2.sets.trailing_zeros());
        row(&mut t, "L1", cfg.l1, 5 + cfg.l1.sets.trailing_zeros());
        println!("{}", t.render());
        println!(
            "cores={} slices={} LLC total={:.2} MB mode={:?}\n",
            cfg.cores,
            cfg.slices,
            cfg.llc_capacity_bytes() as f64 / (1024.0 * 1024.0),
            cfg.llc_mode,
        );
    }
    println!("Paper Table 1 (Haswell): LLC-Slice 2.5MB/20/2048/16-6, L2 256kB/8/512/14-6, L1 32kB/8/64/11-6.");
    bench::eprint_sched_totals("table01_cachespec");
    Ok(())
}
