//! Diagnostic: bare GET cost (no NIC path) for slice-aware vs normal
//! value placement under Zipf keys. Used to attribute where Fig. 8's
//! improvement comes from; not one of the paper's figures.

use kvs::store::{KvStore, Placement};
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use slice_aware::alloc::SliceAllocator;
use trafficgen::ZipfGen;

fn run(
    n: usize,
    placement: Placement,
    theta: f64,
    gets: usize,
) -> Result<f64, Box<dyn std::error::Error>> {
    let store_bytes = n * 64;
    let mut m = Machine::new(
        MachineConfig::haswell_e5_2667_v3().with_dram_capacity(store_bytes * 9 + (256 << 20)),
    );
    let region = m.mem_mut().alloc(store_bytes * 9, 1 << 20)?;
    let hash = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| hash.slice_of(pa));
    let store = KvStore::build(&mut m, &mut alloc, n, placement)?;
    let mut keygen = ZipfGen::new(n as u64, theta, 4242);
    let mut out = [0u8; 64];
    // Warm-up.
    for _ in 0..gets / 2 {
        store.get(&mut m, 0, keygen.next_rank() as u32, &mut out);
    }
    let mut total = 0u64;
    for _ in 0..gets {
        total += store.get(&mut m, 0, keygen.next_rank() as u32, &mut out);
    }
    Ok(total as f64 / gets as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(1, 100_000);
    let args: Vec<String> = std::env::args().collect();
    let default_log2 = if scale.smoke { 14 } else { 21 };
    let log2_n: u32 = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_log2);
    let n = 1usize << log2_n;
    println!("store: 2^{log2_n} values = {} MB", (n * 64) >> 20);
    for theta in [0.99, 0.0] {
        let aware = run(n, Placement::SliceAware { slice: 0 }, theta, scale.packets)?;
        let hot = run(
            n,
            Placement::HotSliceAware {
                slice: 0,
                hot_count: 20_000,
            },
            theta,
            scale.packets,
        )?;
        let normal = run(n, Placement::Normal, theta, scale.packets)?;
        println!(
            "theta={theta}: all-slice {aware:.1}, hot-slice {hot:.1}, normal {normal:.1} \
             cyc/GET; hot delta {:.1} ({:.1}%)",
            normal - hot,
            (normal - hot) / normal * 100.0
        );
    }
    bench::eprint_sched_totals("kvs_probe");
    Ok(())
}
