//! §4.2: the dynamic-headroom-size distribution.
//!
//! The paper replayed ~12.3 M campus-trace packets and measured how much
//! headroom each mbuf needed to place its packet's header: median 256 B,
//! 95 % below 512 B, maximum 832 B (=> 13 cache lines => 4-bit nibbles in
//! udata64). This regenerates the distribution from the CacheDirector
//! placement search over a large pool.

use cache_director::{headroom_distribution, CacheDirector, CACHEDIRECTOR_HEADROOM};
use llc_sim::machine::{Machine, MachineConfig};
use rte::mempool::MbufPool;
use xstats::{Histogram, Summary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(1, 16_384);
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(1 << 30));
    let pool = MbufPool::create(&mut m, scale.packets as u32, CACHEDIRECTOR_HEADROOM, 2048)?;
    let cd = CacheDirector::install(&mut m, &pool, 1, 0);
    let dist = headroom_distribution(&m, &pool, &cd);
    let summary = Summary::from_samples(dist.iter().map(|&h| f64::from(h)))
        .ok_or("empty headroom distribution")?;
    let mut hist = Histogram::new(0.0, 896.0, 14);
    for &h in &dist {
        hist.record(f64::from(h));
    }
    println!(
        "Headroom needed over {} (mbuf, core) pairs [{} mbufs x 8 cores]:\n",
        dist.len(),
        pool.capacity()
    );
    for (edge, count) in hist.edges() {
        let frac = count as f64 / dist.len() as f64;
        println!(
            "{:>4} B: {:>7} ({:>5.1}%) {}",
            edge as u64,
            count,
            frac * 100.0,
            "#".repeat((frac * 120.0) as usize)
        );
    }
    println!(
        "\nmedian={} B  p95={} B  max={} B  fallbacks={}",
        summary.median(),
        summary.percentile(95.0),
        summary.max(),
        cd.stats().fallback
    );
    println!("\nPaper §4.2: median 256 B, 95% of values < 512 B, max 832 B (13 lines).");
    bench::eprint_sched_totals("headroom_dist");
    Ok(())
}
