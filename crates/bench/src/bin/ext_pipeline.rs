//! Extension experiment (§8): compromise-slice placement for a
//! pipelined, two-core service chain.
//!
//! When a chain is split across cores, both stages touch each packet's
//! header. Placing it for stage 1 alone leaves stage 2 with far-slice
//! reads; §8 prescribes "a compromise placement ... beneficial for all
//! cores". This binary measures total busy cycles across both stages
//! for the same packet stream under the three policies.

use nfv::pipeline::{run_pipeline, PipelineConfig, PipelineHeadroom};
use xstats::report::{f, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(1, 60_000);
    println!(
        "§8 extension — two-stage pipeline (cores 0 and 2), {} packets @ 2 Mpps\n",
        scale.packets
    );
    let mut t = Table::new([
        "Header placement",
        "Stage-1 cycles",
        "Stage-2 cycles",
        "Total",
        "vs stock",
    ]);
    let mut base = 0u64;
    for (name, headroom) in [
        ("stock DPDK", PipelineHeadroom::Stock),
        ("stage-1 slice only", PipelineHeadroom::Stage1Slice),
        ("compromise slice", PipelineHeadroom::Compromise),
    ] {
        let r = run_pipeline(
            &PipelineConfig::new(headroom).with_execution(scale.execution(2)),
            256,
            2_000_000.0,
            scale.packets,
        )?;
        let total = r.stage1_cycles + r.stage2_cycles;
        if base == 0 {
            base = total;
        }
        t.row([
            name.to_string(),
            r.stage1_cycles.to_string(),
            r.stage2_cycles.to_string(),
            total.to_string(),
            f((base as f64 - total as f64) / base as f64 * 100.0, 2) + " %",
        ]);
        if headroom == PipelineHeadroom::Compromise {
            println!(
                "compromise slice chosen for cores (0, 2): slice {}",
                r.compromise_slice
            );
        }
    }
    println!("{}", t.render());
    println!(
        "Paper §8: shared data wants \"a compromise placement ... beneficial for all \
         cores\" — placing the header for one stage helps that stage and hurts the \
         other; the compromise slice helps both."
    );
    bench::eprint_sched_totals("ext_pipeline");
    Ok(())
}
