//! Fig. 16 + Table 4: Skylake (Xeon Gold 6134) slice access times and
//! per-core preferred slices.
//!
//! Runs the same §2.2 methodology on the simulated Skylake machine —
//! through polling only, since the 18-slice hash function is unknown
//! (§6) — and derives every core's primary and secondary slices.

use llc_sim::machine::{Machine, MachineConfig};
use slice_aware::latency::profile_access_times;
use slice_aware::placement::PlacementPolicy;
use xstats::report::{f, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(10, 0);
    let mut m = Machine::new(MachineConfig::skylake_gold_6134().with_dram_capacity(1 << 30));
    let region = m.mem_mut().alloc(512 << 20, 1 << 20)?;

    // Fig. 16: access times from core 0.
    let prof0 = profile_access_times(&mut m, 0, region, scale.runs);
    let mut t = Table::new(["Slice", "Read (cycles)"]);
    for e in &prof0.entries {
        t.row([e.slice.to_string(), f(e.read_cycles, 1)]);
    }
    println!("Fig. 16 — access time from core 0 (Skylake, 18 slices)\n");
    println!("{}", t.render());
    println!(
        "spread: {:.1} cycles (paper Fig. 16: roughly 45..75 cycles)\n",
        prof0.max_read_saving()
    );

    // Table 4: per-core primary/secondary slices from measured profiles.
    let profiles: Vec<_> = (0..8)
        .map(|c| profile_access_times(&mut m, c, region, scale.runs))
        .collect();
    let policy = PlacementPolicy::from_profiles(&profiles, 0.5);
    let mut t4 = Table::new(["Core", "Primary slice", "Secondary slices"]);
    for c in 0..8 {
        let secs: Vec<String> = policy
            .secondary(c)
            .iter()
            .map(|s| format!("S{s}"))
            .collect();
        t4.row([
            format!("C{c}"),
            format!("S{}", policy.primary(c)),
            secs.join(", "),
        ]);
    }
    println!("Table 4 — preferable slices per core (measured by polling)\n");
    println!("{}", t4.render());
    println!(
        "Paper Table 4: primaries S0 S4 S8 S12 S10 S14 S3 S15; secondaries \
         {{S2,S6}} {{S1}} {{S11}} {{S13}} {{S7,S9}} {{S16}} {{S5}} {{S17}}."
    );
    let expect = [0usize, 4, 8, 12, 10, 14, 3, 15];
    let ok = (0..8).all(|c| policy.primary(c) == expect[c]);
    println!(
        "primary-slice agreement with the paper: {}",
        if ok { "exact" } else { "DIVERGES" }
    );
    bench::eprint_sched_totals("fig16_table4_skylake");
    Ok(())
}
