//! Calibration helper: sweeps framework overhead and reports achieved
//! throughput + latency percentiles for both applications at 100 Gbps.
//!
//! Not one of the paper's figures — this is the tool used to pick the
//! `framework_cycles` default documented in EXPERIMENTS.md.

use nfv::runtime::{run_experiment, ChainSpec, HeadroomMode, RunConfig, SteeringKind};
use trafficgen::{ArrivalSchedule, CampusTrace, SizeMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let parallel = args.iter().any(|a| a == "--parallel");
    let default_packets = if args.iter().any(|a| a == "--smoke") {
        2_000
    } else {
        100_000
    };
    let packets: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_packets);
    let fw: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(950);
    let skew: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.9);
    let cap: f64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(13.9);
    println!("packets={packets} framework_cycles={fw} flow_skew={skew} nic_cap={cap}Mpps");
    for (name, chain, steering) in [
        ("forwarding/RSS", ChainSpec::MacSwap, SteeringKind::Rss),
        (
            "chain/FlowDirector",
            ChainSpec::RouterNaptLb {
                routes: 3120,
                offload: true,
            },
            SteeringKind::FlowDirector,
        ),
    ] {
        for (hname, headroom) in [
            ("stock", HeadroomMode::Stock),
            (
                "cachedirector",
                HeadroomMode::CacheDirector {
                    preferred_slices: 1,
                },
            ),
        ] {
            let mut cfg = RunConfig::paper_defaults(chain, steering, headroom);
            cfg.framework_cycles = fw;
            cfg.nic_rate_mpps = Some(cap);
            cfg.execution = engine::Execution::from_flag(parallel, cfg.cores);
            let mut trace =
                CampusTrace::new(SizeMix::campus(), 10_000, 42).with_flow_skew(skew, 42);
            // Mean campus frame ≈ 670 B.
            let mut sched = ArrivalSchedule::constant_gbps(100.0, 670.0);
            let res = run_experiment(cfg, &mut trace, &mut sched, packets)?;
            let s = res.summary().ok_or("no latencies recorded")?;
            let row = s.paper_row();
            println!(
                "{name:<20} {hname:<14} achieved={:.2} Gbps offered={:.2} drop={:.1}% p75={:.1}us p90={:.1}us p95={:.1}us p99={:.1}us mean={:.1}us",
                res.achieved_gbps,
                res.offered_gbps,
                res.dropped as f64 / res.offered as f64 * 100.0,
                row[0] / 1000.0,
                row[1] / 1000.0,
                row[2] / 1000.0,
                row[3] / 1000.0,
                row[4] / 1000.0,
            );
        }
    }
    bench::eprint_sched_totals("calibrate");
    Ok(())
}
