//! Fig. 7: aggregate operations per second vs. per-core array size,
//! 8 cores, normal vs. slice-aware — (a) reads, (b) writes.
//!
//! Each core works over its own array (slice-aware: the core's closest
//! slice); the paper sweeps 32 kB to 128 MB and finds slice-aware wins
//! while the per-core set fits a slice (≤ 2.5 MB), with both collapsing
//! to DRAM speed beyond the LLC.

use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use llc_sim::AccessKind;
use slice_aware::alloc::SliceAllocator;
use slice_aware::workload::{aggregate_ops_per_sec, random_access_multicore, warm_buffer};
use slice_aware::SliceBuffer;
use xstats::report::{f, Table};

/// The paper's x-axis (bytes). 128 MB per core x 8 needs more simulated
/// DRAM than useful; the sweep tops out at 32 MB where both curves have
/// long converged to DRAM speed.
const SIZES: &[usize] = &[
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
    8 << 20,
    16 << 20,
    32 << 20,
];

fn measure(m: &mut Machine, bufs: &[SliceBuffer], ops: usize, kind: AccessKind) -> f64 {
    for (c, b) in bufs.iter().enumerate() {
        warm_buffer(m, c, b);
    }
    let work: Vec<(usize, &SliceBuffer)> = bufs.iter().enumerate().collect();
    let totals = random_access_multicore(m, &work, ops, kind, 7);
    aggregate_ops_per_sec(&totals, ops, m.config().freq_ghz) / 1e6
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(1, 20_000);
    println!(
        "Fig. 7 — aggregate MOPS, 8 cores, {} random ops/core per point\n",
        scale.packets
    );
    for kind in [AccessKind::Read, AccessKind::Write] {
        let mut t = Table::new(["Array size", "Normal (MOPS)", "Slice-aware (MOPS)", "Ratio"]);
        for &size in SIZES {
            // A fresh machine per point keeps cache state comparable.
            let mut m =
                Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(7 << 30));
            let region = m.mem_mut().alloc(6 << 30, 1 << 20)?;
            let hash = XorSliceHash::haswell_8slice();
            let mut alloc = SliceAllocator::new(region, move |pa| hash.slice_of(pa));
            let lines = size / 64;
            let normal = (0..8)
                .map(|_| alloc.alloc_contiguous_lines(lines))
                .collect::<Result<Vec<SliceBuffer>, _>>()?;
            let aware = (0..8)
                .map(|c| {
                    let target = m.closest_slice(c);
                    alloc.alloc_lines(target, lines)
                })
                .collect::<Result<Vec<SliceBuffer>, _>>()?;
            let n = measure(&mut m, &normal, scale.packets, kind);
            let a = measure(&mut m, &aware, scale.packets, kind);
            let label = if size >= 1 << 20 {
                format!("{}M", size >> 20)
            } else {
                format!("{}K", size >> 10)
            };
            t.row([label, f(n, 1), f(a, 1), f(a / n, 3)]);
        }
        println!("{kind:?}:\n{}", t.render());
    }
    println!(
        "Paper Fig. 7: slice-aware above normal while the per-core set fits one slice \
         (2.5 MB); both drop to DRAM speed past the LLC and converge."
    );
    bench::eprint_sched_totals("fig07_ops");
    Ok(())
}
