//! Overload study: open-loop KVS goodput through saturation, with and
//! without overload control, plus a chaos scenario (`--chaos`).
//!
//! The closed-loop fig08 measures capacity; this binary measures what
//! happens *past* it. An open-loop client offers load straight through
//! the saturation knee (~16 Mops/s per core here) under three control
//! regimes:
//!
//! - **no-control** — accept everything, never retry. Past the knee the
//!   RX ring fills, queueing delay blows through the request deadline,
//!   and almost everything that is not dropped expires on arrival:
//!   goodput collapses.
//! - **shedding** — a queue-depth admission policy sheds at ingress,
//!   bounding queueing delay below the deadline, so admitted requests
//!   still complete: goodput saturates and holds.
//! - **shed+retry** — shedding plus the deadline-aware client retry
//!   loop (timeout, exponential backoff stretched under backpressure,
//!   bounded attempts, give-up past the deadline). Retries recover
//!   transient losses without re-amplifying sustained overload.
//!
//! Per rate the report shows goodput, p99/p999 completion latency,
//! SLO-violation time ([`xstats::slo_violation_ns`] over the completion
//! series), and the logical/physical ledgers (sheds, expiries, retries,
//! give-ups) whose conservation `run_openloop` asserts on every run.
//!
//! `--chaos` instead runs one long Poisson run at ~65 % load with a
//! ×4 flash crowd, a link flap, and an RX stall injected mid-run, and
//! prints time-bucketed goodput for no-control vs. the full resilient
//! stack — degradation under the faults, recovery after them. The
//! chaos runs use a wider deadline (12 µs) and a tighter client
//! timeout (2.5 µs, 4 attempts) so retrying *through* a fault window
//! is feasible before the deadline expires.

use engine::AdmissionPolicy;
use kvs::store::{KvStore, Placement};
use kvs::{run_openloop, OpenLoopConfig, OpenLoopReport};
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use rte::fault::{FaultPlan, Window};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port};
use rte::steering::{Rss, Steering};
use slice_aware::alloc::SliceAllocator;
use trafficgen::{Arrivals, OpenLoopGen, RateProfile};
use xstats::report::{f, Table};
use xstats::{slo_violation_ns, Summary};

/// Serving cores (and RX queues).
const CORES: usize = 2;

/// Per-op relative deadline, ns. The full 256-deep ring drains in
/// ~16 µs at ~63 ns/op, so an uncontrolled overload queue blows far
/// past this; the shedding backlog (32) keeps waits near 2 µs.
const DEADLINE_NS: f64 = 6_000.0;

/// Queue-depth admission threshold for the controlled modes.
const SHED_BACKLOG: usize = 32;

/// Offered rates swept (total ops/s over both cores). Capacity is
/// ~30 Mops/s; the tail of the sweep is ~3× past the knee.
const RATES: &[f64] = &[8e6, 16e6, 24e6, 30e6, 36e6, 48e6, 64e6, 96e6];

/// The three control regimes of the sweep.
#[derive(Clone, Copy)]
enum Mode {
    NoControl,
    Shedding,
    ShedRetry,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::NoControl => "no-control",
            Mode::Shedding => "shedding",
            Mode::ShedRetry => "shed+retry",
        }
    }

    fn apply(self, cfg: OpenLoopConfig) -> OpenLoopConfig {
        // Every mode runs the same 5 µs accounting timeout so the tail
        // a client waits on an unanswered op is identical; only the
        // attempt budget and the admission policy differ.
        match self {
            Mode::NoControl => cfg.with_retries(5_000.0, 1),
            Mode::Shedding => cfg
                .with_admission(AdmissionPolicy::QueueDepth {
                    max_backlog: SHED_BACKLOG,
                })
                .with_retries(5_000.0, 1),
            Mode::ShedRetry => cfg
                .with_admission(AdmissionPolicy::QueueDepth {
                    max_backlog: SHED_BACKLOG,
                })
                .with_retries(5_000.0, 3),
        }
    }
}

/// Builds a fresh machine/store/port and runs one open-loop experiment
/// (open-loop completion matching needs a fresh port per run).
fn run_one(cfg: &OpenLoopConfig, arrivals: &mut dyn Arrivals) -> OpenLoopReport {
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
    let region = m.mem_mut().alloc(16 << 20, 1 << 20).unwrap();
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let store = KvStore::build(&mut m, &mut alloc, 4096, Placement::Normal).unwrap();
    let mut pool = MbufPool::create(&mut m, (8 * CORES * cfg.queue_depth) as u32, 128, 2048)
        .expect("pool sized to the ring");
    let mut port = Port::new(0, Steering::Rss(Rss::new(cfg.cores)), cfg.queue_depth);
    let mut policy = FixedHeadroom(128);
    run_openloop(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        arrivals,
        cfg,
    )
}

/// The completion series `(t, latency)` sorted by completion time — the
/// step function `slo_violation_ns` integrates over.
fn completion_series(rep: &OpenLoopReport) -> Vec<(f64, f64)> {
    let mut s = rep.completions.clone();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite completion records"));
    s
}

/// Goodput over the completion window (first arrival at ~0 to the last
/// completion): completed ops per second *while the run was serving*.
/// The engine's own duration additionally counts the give-up timer
/// tail after the last arrival, which at smoke scale would dilute
/// every overloaded point by a constant; the completion window is the
/// measure that converges at any run length.
fn goodput_mops(rep: &OpenLoopReport) -> f64 {
    let end = rep.completions.iter().map(|&(t, _)| t).fold(0.0, f64::max);
    if end <= 0.0 {
        0.0
    } else {
        rep.completed as f64 / (end / 1e9) / 1e6
    }
}

fn sweep(mode: Mode, ops: usize, parallel: bool) -> Vec<(f64, OpenLoopReport)> {
    RATES
        .iter()
        .map(|&rate| {
            let cfg = mode
                .apply(OpenLoopConfig::new(ops, 42).with_cores(CORES))
                .with_deadline(DEADLINE_NS)
                .with_execution(engine::Execution::from_flag(parallel, CORES));
            let mut arr = OpenLoopGen::constant(rate);
            (rate, run_one(&cfg, &mut arr))
        })
        .collect()
}

fn print_mode_table(mode: Mode, rows: &[(f64, OpenLoopReport)]) {
    println!("{} — deadline {:.0} us:", mode.name(), DEADLINE_NS / 1e3);
    let mut t = Table::new([
        "Offered (Mops/s)",
        "Goodput (Mops/s)",
        "p99 (us)",
        "p999 (us)",
        "SLO viol (us)",
        "shed",
        "expired",
        "retries",
        "gave_up",
    ]);
    for (rate, rep) in rows {
        let (p99, p999) = match Summary::from_samples(rep.latencies()) {
            Some(s) => (s.percentile(99.0) / 1e3, s.percentile(99.9) / 1e3),
            None => (f64::NAN, f64::NAN),
        };
        let viol = slo_violation_ns(&completion_series(rep), DEADLINE_NS) / 1e3;
        t.row([
            f(rate / 1e6, 1),
            f(goodput_mops(rep), 3),
            f(p99, 2),
            f(p999, 2),
            f(viol, 1),
            f(rep.admit.total() as f64, 0),
            f(rep.drops.expired as f64, 0),
            f(rep.retries as f64, 0),
            f(rep.gave_up as f64, 0),
        ]);
    }
    println!("{}", t.render());
}

/// Peak and past-knee (last swept rate) goodput for one mode's rows.
fn knee_stats(rows: &[(f64, OpenLoopReport)]) -> (f64, f64) {
    let peak = rows
        .iter()
        .map(|(_, r)| goodput_mops(r))
        .fold(0.0, f64::max);
    let last = rows.last().map_or(0.0, |(_, r)| goodput_mops(r));
    (peak, last)
}

fn run_sweep(ops: usize, parallel: bool) {
    println!(
        "Open-loop KVS knee — {CORES} cores, {} logical ops/point, \
         deadline {:.0} us, shed backlog {SHED_BACKLOG}\n",
        ops,
        DEADLINE_NS / 1e3
    );
    let mut all = Vec::new();
    for mode in [Mode::NoControl, Mode::Shedding, Mode::ShedRetry] {
        let rows = sweep(mode, ops, parallel);
        print_mode_table(mode, &rows);
        all.push((mode, rows));
    }
    println!("Knee summary (goodput past the last swept rate vs. peak):");
    for (mode, rows) in &all {
        let (peak, last) = knee_stats(rows);
        println!(
            "  {:<10} peak {:.3} Mops/s, at ~3x overload {:.3} Mops/s ({:.0}% of peak)",
            mode.name(),
            peak,
            last,
            if peak > 0.0 { last / peak * 100.0 } else { 0.0 }
        );
    }
    println!(
        "\nPast the knee, no-control goodput collapses (expired-on-arrival \
         dominates); shedding holds goodput near peak by bounding queue delay."
    );
}

/// Chaos scenario: ~65 % base load (Poisson) with a ×4 flash crowd
/// over [0.20T, 0.30T), a link flap over [0.40T, 0.43T) and an RX
/// stall over [0.50T, 0.525T), where T = ops/base_rate is the nominal
/// run length. The flash crowd consumes the fixed op budget faster, so
/// arrivals actually end at E = T − 3 × flash_len = 0.7T; goodput is
/// bucketed over [0, E) so every fault window — and a clean recovery
/// window after the last one — sees arrival traffic.
fn run_chaos(ops: usize, parallel: bool) {
    let base_rate = 20e6; // ~65 % of 2-core capacity.
    let horizon_ns = ops as f64 / base_rate * 1e9;
    let flash = (0.20 * horizon_ns, 0.30 * horizon_ns);
    let flash_mult = 4.0;
    // Arrivals end once the op budget is spent: the flash adds
    // (mult − 1) × rate × flash_len early arrivals.
    let arrive_end_ns = horizon_ns - (flash_mult - 1.0) * (flash.1 - flash.0);
    let flap = Window::new((0.40 * horizon_ns) as u64, (0.43 * horizon_ns) as u64);
    let stall = Window::new((0.50 * horizon_ns) as u64, (0.525 * horizon_ns) as u64);
    // Chaos-specific client knobs: a deadline wide enough to survive a
    // flap-width outage via retries (but still below the full-ring
    // drain time, so uncontrolled flash overload expires), and a
    // timeout small enough for ~3 attempts inside it.
    let deadline_ns = 12_000.0;
    let timeout_ns = 2_500.0;
    println!(
        "Chaos — {CORES} cores, {} ops at {:.0} Mops/s Poisson base, \
         x4 flash [{:.0},{:.0}) us, link flap [{},{}) us, RX stall [{},{}) us, \
         deadline {:.0} us, timeout {:.1} us\n",
        ops,
        base_rate / 1e6,
        flash.0 / 1e3,
        flash.1 / 1e3,
        flap.start / 1000,
        flap.end / 1000,
        stall.start / 1000,
        stall.end / 1000,
        deadline_ns / 1e3,
        timeout_ns / 1e3,
    );
    let faults = FaultPlan::none()
        .with_seed(9)
        .with_link_flap(flap)
        .with_rx_stall(stall);
    let mut results = Vec::new();
    for mode in [Mode::NoControl, Mode::ShedRetry] {
        let mut cfg = OpenLoopConfig::new(ops, 42)
            .with_cores(CORES)
            .with_deadline(deadline_ns)
            .with_faults(faults.clone())
            .with_execution(engine::Execution::from_flag(parallel, CORES));
        cfg = match mode {
            Mode::NoControl => cfg.with_retries(timeout_ns, 1),
            _ => cfg
                .with_admission(AdmissionPolicy::QueueDepth {
                    max_backlog: SHED_BACKLOG,
                })
                .with_retries(timeout_ns, 4),
        };
        let mut arr = OpenLoopGen::poisson(base_rate, 7)
            .with_profile(RateProfile::flat().with_flash(flash.0, flash.1, flash_mult));
        results.push((mode, run_one(&cfg, &mut arr)));
    }
    // Goodput per tenth of the arrival span [0, E); completions that
    // trail past E (late retries draining) clamp into the last bucket.
    let bucket_ns = arrive_end_ns / 10.0;
    let mut t = Table::new([
        "Bucket",
        "Window (us)",
        "no-control (Mops/s)",
        "shed+retry (Mops/s)",
    ]);
    let mut series: Vec<Vec<f64>> = Vec::new();
    for (_, rep) in &results {
        let mut buckets = [0u64; 10];
        for &(tc, _) in &rep.completions {
            let b = ((tc / bucket_ns) as usize).min(9);
            buckets[b] += 1;
        }
        series.push(
            buckets
                .iter()
                .map(|&c| c as f64 / (bucket_ns / 1e9))
                .collect(),
        );
    }
    // Indexing both mode series per bucket reads better than a zip of
    // zips here.
    #[allow(clippy::needless_range_loop)]
    for b in 0..10 {
        t.row([
            f(b as f64, 0),
            f(b as f64 * bucket_ns / 1e3, 0),
            f(series[0][b] / 1e6, 3),
            f(series[1][b] / 1e6, 3),
        ]);
    }
    println!("{}", t.render());
    for (i, (mode, rep)) in results.iter().enumerate() {
        // Pre-fault = the two buckets before the flash; post-fault =
        // the two buckets after the RX stall ends.
        let pre = series[i][0..2].iter().sum::<f64>() / 2.0;
        let post = series[i][8..10].iter().sum::<f64>() / 2.0;
        println!(
            "  {:<10} completed {} / {} (gave up {}, retries {}, shed {}, \
             expired {}, nic drops {}); pre-fault {:.3} Mops/s, \
             post-fault {:.3} Mops/s ({:.0}% recovered)",
            mode.name(),
            rep.completed,
            rep.logical_ops,
            rep.gave_up,
            rep.retries,
            rep.admit.total(),
            rep.drops.expired,
            rep.drops.nic.total(),
            pre / 1e6,
            post / 1e6,
            if pre > 0.0 { post / pre * 100.0 } else { 0.0 }
        );
    }
    println!(
        "\nThe resilient stack sheds the flash crowd, retries through the \
         flap/stall windows, and returns to pre-fault goodput once they lift."
    );
}

fn main() {
    let scale = bench::Scale::from_args(1, 30_000);
    let chaos = std::env::args().any(|a| a == "--chaos");
    // Chaos needs a longer horizon than the sweep's per-point budget so
    // the fault windows are wide relative to queue drain times.
    if chaos {
        run_chaos(scale.packets.max(4_000), scale.parallel);
    } else {
        run_sweep(scale.packets, scale.parallel);
    }
    bench::eprint_sched_totals("fig_knee_kvs");
}
