//! Fig. 12: simple forwarding, 64 B packets at 1000 pps — end-to-end
//! latency percentiles without loopback, DPDK vs. DPDK + CacheDirector.
//!
//! The paper sends five thousand 64 B packets at low rate to expose the
//! pure per-packet effect with no queueing, over 50 runs.

use nfv::runtime::{run_experiment, ChainSpec, HeadroomMode, RunConfig, SteeringKind};
use trafficgen::{ArrivalSchedule, CampusTrace};
use xstats::report::{f, Table};

fn percentile_rows(
    headroom: HeadroomMode,
    runs: usize,
    packets: usize,
    parallel: bool,
) -> Result<[f64; 5], Box<dyn std::error::Error>> {
    let mut rows = Vec::with_capacity(runs);
    for run in 0..runs {
        let mut cfg = RunConfig::paper_defaults(ChainSpec::MacSwap, SteeringKind::Rss, headroom);
        cfg.seed ^= run as u64;
        cfg.execution = engine::Execution::from_flag(parallel, cfg.cores);
        let mut trace = CampusTrace::fixed_size(64, 1024, 100 + run as u64);
        let mut sched = ArrivalSchedule::constant_pps(1000.0);
        let res = run_experiment(cfg, &mut trace, &mut sched, packets)?;
        rows.push(res.summary().ok_or("no latencies recorded")?.paper_row());
    }
    Ok(bench::median_rows(&rows))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(10, 5000);
    println!(
        "Fig. 12 — 64 B @ 1000 pps, {} packets, median of {} runs (DuT latency, ns)\n",
        scale.packets, scale.runs
    );
    let stock = percentile_rows(
        HeadroomMode::Stock,
        scale.runs,
        scale.packets,
        scale.parallel,
    )?;
    let cd = percentile_rows(
        HeadroomMode::CacheDirector {
            preferred_slices: 1,
        },
        scale.runs,
        scale.packets,
        scale.parallel,
    )?;
    let mut t = Table::new([
        "Percentile",
        "DPDK (ns)",
        "DPDK+CacheDirector (ns)",
        "Saving (ns)",
    ]);
    for (i, name) in ["75th", "90th", "95th", "99th", "Mean"].iter().enumerate() {
        t.row([
            name.to_string(),
            f(stock[i], 0),
            f(cd[i], 0),
            f(stock[i] - cd[i], 0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper Fig. 12: CacheDirector cuts the higher percentiles by ~20% (~1 us per \
         packet on their testbed, where per-packet DuT latency is us-scale; here the \
         simulated DuT's bare service time is sub-us, so savings are the per-access \
         slice-distance cycles — same direction, smaller absolute value; see \
         EXPERIMENTS.md)."
    );
    bench::eprint_sched_totals("fig12_lowrate");
    Ok(())
}
