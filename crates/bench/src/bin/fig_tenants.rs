//! Multi-tenant SLO defense under noisy-neighbour chaos (robustness
//! study; not one of the paper's figures, but built from its isolation
//! machinery — §5 monitoring, §8 partitioning — closed into an online
//! control loop).
//!
//! Three tenants share one socket: a KVS instance, an NFV chain and a
//! cache-thrashing antagonist whose arrival schedule alternates quiet
//! trickles with near-line-rate DMA storms. Three partitioning regimes
//! run over the identical packet sequence:
//!
//! * `static-even` — the naive equal split, pinned for the whole run;
//! * `static-oracle` — the hand-tuned end state an operator with
//!   perfect foreknowledge would install, pinned;
//! * `online` — the closed-loop isolation controller, starting from
//!   the even split and re-partitioning CAT and DDIO ways from CBo
//!   counters and windowed p99s.
//!
//! Usage: `fig_tenants [runs] [packets] [--smoke] [--parallel]
//! [--scheduler=reference]`. Output is bit-identical across execution
//! modes and schedulers (golden-pinned).

use bench::{eprint_sched_totals, scheduler_from_args, Scale};
use tenancy::run::{run_tenancy, Regime, TenancyConfig, CONTROL_PERIOD_NS};
use xstats::report::{f, Table};
use xstats::violation_minutes;

fn main() {
    let scale = Scale::from_args(1, 20_000);
    // The storm schedule needs ≥ 3 ms of simulated time (the first
    // storm begins at 1.0 ms); the generic 2k-packet smoke cap would
    // end the run before the chaos starts.
    let packets = if scale.smoke { 6_000 } else { scale.packets };
    let scheduler = scheduler_from_args();

    println!("Multi-tenant SLO defense: online LLC isolation vs. static splits");
    println!(
        "packets/victim={packets}  control_epoch={}ns  regimes=static-even,static-oracle,online",
        CONTROL_PERIOD_NS as u64
    );

    for regime in [Regime::StaticEven, Regime::StaticOracle, Regime::Online] {
        let cfg = TenancyConfig {
            execution: scale.execution(5),
            scheduler,
            ..TenancyConfig::new(regime, packets)
        };
        let rep = run_tenancy(&cfg);
        println!();
        println!(
            "== {} ==  duration={} ms",
            regime.name(),
            f(rep.duration_ns / 1e6, 2)
        );
        let mut t = Table::new([
            "tenant",
            "goodput (Mpps)",
            "p99 (ns)",
            "SLO (ns)",
            "violation (ms)",
            "violation (min/h)",
            "ways min..final",
        ]);
        for (i, ten) in rep.tenants.iter().enumerate() {
            let slo = if ten.slo_ns.is_finite() {
                f(ten.slo_ns, 0)
            } else {
                "best-effort".to_string()
            };
            // Scale-free operator view: minutes above SLO per hour of
            // service, from the same series the violation integral uses.
            let viol_min = violation_minutes(&[rep.series[i].as_slice()], ten.slo_ns);
            let duration_min = rep.duration_ns / 60.0e9;
            let min_per_h = if ten.slo_ns.is_finite() && duration_min > 0.0 {
                viol_min / duration_min * 60.0
            } else {
                0.0
            };
            t.row([
                ten.name.to_string(),
                f(ten.goodput_mpps, 3),
                f(ten.p99_ns, 1),
                slo,
                f(ten.violation_ns / 1e6, 3),
                f(min_per_h, 1),
                format!("{}..{}", ten.min_ways, ten.final_ways),
            ]);
        }
        println!("{}", t.render());
        println!(
            "controller: epochs={} moves={} ddio_shrinks={} ddio_restores={} \
             infeasible={} final_ddio={}",
            rep.epochs,
            rep.moves,
            rep.ddio_shrinks,
            rep.ddio_restores,
            rep.infeasible,
            rep.final_ddio
        );
    }

    println!();
    println!(
        "The online controller must keep every victim's violation time \
         strictly below the static even split's (asserted in \
         crates/tenancy/tests/isolation.rs at full scale)."
    );
    eprint_sched_totals("fig_tenants");
}
