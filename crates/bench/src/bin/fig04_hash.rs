//! Fig. 4: reverse-engineering the Complex Addressing hash function.
//!
//! Runs the §2.1 procedure against the simulated Haswell machine using
//! only the uncore-counter polling primitive: polls a base address,
//! flips each physical-address bit, re-polls, and derives which hash
//! output bits each address bit feeds. Renders the Fig. 4 matrix and
//! verifies the reconstruction against polling on random addresses.

use llc_sim::hash::{mask_of_bits, O0_BITS, O1_BITS, O2_BITS};
use llc_sim::machine::{Machine, MachineConfig};
use slice_aware::reverse::{reconstruct_hash, verify_hash};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(1, 512);
    // A naturally aligned 256 MB region covers physical bits 6..=27.
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(1 << 30));
    let region = m.mem_mut().alloc(256 << 20, 256 << 20)?;
    let rec = reconstruct_hash(&mut m, 0, region, 16);
    println!(
        "Reconstructed Complex Addressing (bits 6..={}):\n",
        rec.max_bit
    );
    println!("{}", rec.render_fig4());
    // Compare against the published masks bit by bit.
    let published = [
        ("o0", mask_of_bits(O0_BITS)),
        ("o1", mask_of_bits(O1_BITS)),
        ("o2", mask_of_bits(O2_BITS)),
    ];
    let window = (1u64 << (rec.max_bit + 1)) - 1;
    let mut all_match = true;
    for (k, (name, mask)) in published.iter().enumerate() {
        let matches = rec.masks[k] == mask & window;
        all_match &= matches;
        println!(
            "{name}: {} (reconstructed {:#012x}, published-within-window {:#012x})",
            if matches { "MATCH" } else { "MISMATCH" },
            rec.masks[k],
            mask & window
        );
    }
    let agreement = verify_hash(&mut m, 0, region, &rec, scale.packets, 8, 42);
    println!(
        "\nVerification on {} random addresses: {:.2}% agreement with polling",
        scale.packets,
        agreement * 100.0
    );
    println!(
        "\nPaper: hash of the Xeon E5-2667 v3 equals the function of Maurice et al. \
         for 2^n-core CPUs; reconstruction here {}.",
        if all_match && agreement == 1.0 {
            "reproduces it exactly"
        } else {
            "DIVERGES (investigate!)"
        }
    );
    bench::eprint_sched_totals("fig04_hash");
    Ok(())
}
