//! Fig. 6: average speedup of slice-aware vs. normal allocation, per
//! target slice — (a) reads, (b) writes.
//!
//! The §3 experiment: allocate 1.375 MB that maps to one slice, touch it
//! uniformly at random 10 000 times per run, compare against the same
//! loop over contiguous ("normal") memory.

use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use llc_sim::AccessKind;
use slice_aware::alloc::SliceAllocator;
use slice_aware::workload::{random_access, warm_buffer};
use xstats::report::{f, Table};

/// The paper's buffer: half a slice plus (half) the L2 ≈ 1.375 MB.
const BUF_BYTES: usize = 1_441_792;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(20, 10_000);
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(1 << 30));
    let region = m.mem_mut().alloc(512 << 20, 1 << 20)?;
    let hash = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| hash.slice_of(pa));
    let lines = BUF_BYTES / 64;
    let normal = alloc.alloc_contiguous_lines(lines)?;
    let slice_bufs = (0..8)
        .map(|s| alloc.alloc_lines(s, lines))
        .collect::<Result<Vec<_>, _>>()?;

    let measure = |m: &mut Machine, buf: &slice_aware::SliceBuffer, kind| -> f64 {
        warm_buffer(m, 0, buf);
        let mut total = 0u64;
        for run in 0..scale.runs {
            total += random_access(m, 0, buf, scale.packets, kind, 1000 + run as u64);
            m.drain_write_backs(0);
        }
        total as f64 / scale.runs as f64
    };

    println!(
        "Fig. 6 — {} runs x {} random ops over a {:.3} MB buffer (core 0)\n",
        scale.runs,
        scale.packets,
        BUF_BYTES as f64 / (1024.0 * 1024.0)
    );
    for kind in [AccessKind::Read, AccessKind::Write] {
        let base = measure(&mut m, &normal, kind);
        let mut t = Table::new(["Slice", "Avg speedup (%)", "cycles/run"]);
        for (s, buf) in slice_bufs.iter().enumerate() {
            let cyc = measure(&mut m, buf, kind);
            t.row([s.to_string(), f((base - cyc) / base * 100.0, 2), f(cyc, 0)]);
        }
        println!(
            "{:?}: normal allocation baseline {:.0} cycles/run\n{}",
            kind,
            base,
            t.render()
        );
    }
    println!(
        "Paper Fig. 6: close slices (0/2/4/6 from core 0) show positive speedup, far \
         slices negative; the effect appears for writes only under sustained load \
         (write-back accumulation)."
    );
    bench::eprint_sched_totals("fig06_speedup");
    Ok(())
}
