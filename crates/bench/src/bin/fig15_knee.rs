//! Fig. 15: 99th-percentile latency vs. achieved throughput for the
//! stateful chain, swept over offered loads, with the paper's piecewise
//! fit (linear below the knee, quadratic above) and R².
//!
//! Latency here includes the loopback component, as in the paper's
//! figure ("the values of tail latency include loopback cost").

use nfv::runtime::{run_experiment, ChainSpec, HeadroomMode, RunConfig, SteeringKind};
use trafficgen::{ArrivalSchedule, CampusTrace, SizeMix};
use xstats::fit::piecewise_knee_fit;
use xstats::report::{f, Table};

/// Offered rates swept (Gbps). The paper sweeps 5-100.
const RATES: &[f64] = &[
    5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0, 55.0, 60.0, 65.0, 70.0, 75.0, 80.0,
    90.0, 100.0,
];

/// Loopback latency floor (the paper measures 495 us at 100 Gbps; at low
/// rates it is 9 us — modelled as rate-proportional LoadGen queueing).
fn loopback_ns(offered_gbps: f64) -> f64 {
    9_000.0 + offered_gbps / 100.0 * 486_000.0
}

/// One `(offered_gbps, achieved_gbps, p99_us)` sample per swept rate.
type KneePoint = (f64, f64, f64);

/// Returns `(offered, achieved, p99_us)` per swept rate.
fn sweep(
    headroom: HeadroomMode,
    packets: usize,
    parallel: bool,
) -> Result<Vec<KneePoint>, Box<dyn std::error::Error>> {
    let mut out = Vec::with_capacity(RATES.len());
    for &gbps in RATES {
        let mut cfg = RunConfig::paper_defaults(
            ChainSpec::RouterNaptLb {
                routes: 3120,
                offload: true,
            },
            SteeringKind::FlowDirector,
            headroom,
        );
        cfg.loopback_ns = loopback_ns(gbps);
        cfg.execution = engine::Execution::from_flag(parallel, cfg.cores);
        let mut trace = CampusTrace::new(SizeMix::campus(), 10_000, 42);
        let mut sched = ArrivalSchedule::constant_gbps(gbps, 670.0);
        let res = run_experiment(cfg, &mut trace, &mut sched, packets)?;
        let s = res.summary_with_loopback().ok_or("no latencies recorded")?;
        out.push((gbps, res.achieved_gbps, s.percentile(99.0) / 1e3));
    }
    Ok(out)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(1, 60_000);
    println!(
        "Fig. 15 — p99 latency (incl. loopback) vs achieved throughput, {} pkts/point\n",
        scale.packets
    );
    let stock = sweep(HeadroomMode::Stock, scale.packets, scale.parallel)?;
    let cd = sweep(
        HeadroomMode::CacheDirector {
            preferred_slices: 1,
        },
        scale.packets,
        scale.parallel,
    )?;
    let mut t = Table::new([
        "Offered (Gbps)",
        "DPDK tput",
        "DPDK p99 (us)",
        "+CD tput",
        "+CD p99 (us)",
    ]);
    for (i, &rate) in RATES.iter().enumerate() {
        t.row([
            f(rate, 0),
            f(stock[i].1, 2),
            f(stock[i].2, 1),
            f(cd[i].1, 2),
            f(cd[i].2, 1),
        ]);
    }
    println!("{}", t.render());
    // The paper fits linear below its knee (37 Gbps on their testbed)
    // and quadratic above. Our simulated DuT keeps up until the NIC cap
    // bites near 72 Gbps, past which *achieved* throughput stops moving,
    // so the piecewise fit uses offered load as x (monotone); the knee
    // sits near 70 Gbps offered.
    const KNEE: f64 = 70.0;
    for (name, pts) in [("DPDK", &stock), ("CacheDirector", &cd)] {
        let xy: Vec<(f64, f64)> = pts.iter().map(|p| (p.0, p.2)).collect();
        match piecewise_knee_fit(&xy, KNEE) {
            Some(fit) => println!(
                "{name}-Fit: low  y = {:.2} + {:.4}x (R^2 = {:.3}); \
                 high y = {:.1} {:+.2}x {:+.4}x^2 (R^2 = {:.3})",
                fit.low.a, fit.low.b, fit.low.r2, fit.high.a, fit.high.b, fit.high.c, fit.high.r2
            ),
            None => println!("{name}-Fit: not enough points on one side of the knee"),
        }
    }
    println!(
        "\nPaper: DPDK low 15.61+0.2379x, high 1977-95.18x+1.158x^2 (R^2 0.995/0.993); \
         CacheDirector's curve sits slightly right — the knee shifts toward higher load."
    );
    bench::eprint_sched_totals("fig15_knee");
    Ok(())
}
