//! Fig. 8: emulated KVS — average transactions per second for GET/SET
//! mixes, Zipf(0.99) and uniform keys, slice-aware vs. normal values.
//!
//! One serving core; requests in 128 B TCP packets through the NIC path.
//! Scale note: the paper's store is 2^24 64 B values (1 GB). The default
//! here is 2^21 (128 MB — still 6.4x the LLC, preserving the hit-rate
//! structure); pass a third argument `24` to run the full-size store.

use engine::Execution;
use kvs::proto::RequestGen;
use kvs::server::{flow_for_queue, run_server, MigrationMode, ServerConfig};
use kvs::store::{KvStore, Placement};
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port};
use rte::steering::{Rss, Steering};
use slice_aware::alloc::SliceAllocator;
use trafficgen::{FlowTuple, PhaseGen, PhaseSchedule, ZipfGen};
use xstats::report::{f, Table};

/// One benchmark point: warm-up pass, then a measured run.
///
/// `make_placement` sees the built machine (the migration study homes
/// each core's hot pool in that core's closest slice); `scramble`
/// passes client keys through a seeded bijection so Zipf popularity is
/// decorrelated from key identity; `migration` selects the §8 hot-set
/// migration policy; `churn` runs every client through the given phase
/// schedule (rank rotation per phase — the non-stationary workload of
/// the `--churn` study).
#[allow(clippy::too_many_arguments)]
fn run_config(
    n_values: usize,
    make_placement: &dyn Fn(&Machine) -> Placement,
    theta: f64,
    get_permille: u32,
    requests: usize,
    cores: usize,
    execution: Execution,
    scramble: bool,
    migration: MigrationMode,
    churn: Option<&PhaseSchedule>,
) -> Result<kvs::ServerReport, Box<dyn std::error::Error>> {
    // The slice-aware carving needs ~slices x the store's footprint.
    let store_bytes = n_values * 64;
    let region_bytes = (store_bytes * 9).max(64 << 20);
    let mut m = Machine::new(
        MachineConfig::haswell_e5_2667_v3()
            .with_dram_capacity(region_bytes + store_bytes + (256 << 20)),
    );
    let placement = make_placement(&m);
    let region = m.mem_mut().alloc(region_bytes, 1 << 20)?;
    let hash = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| hash.slice_of(pa));
    let store = KvStore::build(&mut m, &mut alloc, n_values, placement.clone())?;
    let mut pool = MbufPool::create(&mut m, (1024 * cores) as u32, 128, 2048)?;
    let mut port = Port::new(0, Steering::Rss(Rss::new(cores)), 256);
    let make_gen = |keygen: ZipfGen, q: u64| match churn {
        Some(schedule) => RequestGen::phased(
            PhaseGen::new(keygen, schedule.clone(), 5150 + q),
            get_permille,
            77 + q,
        ),
        None => RequestGen::new(keygen, get_permille, 77 + q),
    };
    let mut gens: Vec<RequestGen> = if cores == 1 {
        let keygen = ZipfGen::new(n_values as u64, theta, 4242);
        vec![make_gen(keygen, 0)]
    } else {
        // Multi-queue (§8): each queue's client draws from its own key
        // class so concurrent workers' SETs stay disjoint.
        let base = FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
        (0..cores)
            .map(|q| {
                let flow = flow_for_queue(&mut port, base, q);
                let keygen = ZipfGen::new((n_values / cores) as u64, theta, 4242 + q as u64);
                make_gen(keygen, q as u64)
                    .with_flow(flow)
                    .with_key_partition(cores as u32, q as u32)
            })
            .collect()
    };
    if scramble {
        gens = gens
            .into_iter()
            .enumerate()
            .map(|(q, g)| g.with_key_scramble(4300 + q as u64))
            .collect();
    }
    let mut policy = FixedHeadroom(128);
    let mut cfg = ServerConfig::fig8(requests, get_permille, 1)
        .with_cores(cores)
        .with_execution(execution);
    cfg.scheduler = bench::scheduler_from_args();
    cfg.migration = migration;
    // Warm-up pass (the paper averages many runs on a hot server). With
    // migration enabled it also pre-migrates the store, so the measured
    // run starts from a layout the warm-up's migrator left behind —
    // exactly what HotMigrator::for_store must read correctly.
    let warm = ServerConfig {
        requests: requests / 4,
        ..cfg.clone()
    };
    run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &warm,
    );
    let rep = run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &cfg,
    );
    if std::env::var("KVS_DEBUG").is_ok() {
        eprintln!(
            "  [{placement:?} theta={theta} get={get_permille}] cycles/request = {:.1}",
            rep.cycles_per_request
        );
    }
    Ok(rep)
}

fn flag<T: std::str::FromStr>(args: &[String], prefix: &str) -> Option<T> {
    args.iter()
        .find_map(|a| a.strip_prefix(prefix).and_then(|v| v.parse().ok()))
}

/// The `--migrate=<epoch>` study: static Striped vs. StripedHot vs.
/// StripedHot with §8 hot-set migration, all multi-queue with scrambled
/// Zipf clients (so the popular keys start *cold* and only migration
/// can move them into the slice-local hot pools).
#[allow(clippy::too_many_arguments)]
fn run_migration_study(
    n_values: usize,
    log2_n: u32,
    theta: f64,
    epoch: usize,
    requests: usize,
    cores: usize,
    execution: Execution,
) -> Result<(), Box<dyn std::error::Error>> {
    // Hot pool per core: the §3 half-slice rule of thumb, capped at an
    // eighth of the core's key class so the hot area stays selective at
    // smoke scale.
    let class_len = n_values / cores;
    let hot_per_core = (20_000 / cores).min(class_len / 8).max(1);
    // The study is about epoch boundaries: guarantee every core sees at
    // least three of them in the measured run, whatever scale was asked
    // for (at --smoke scale the raw request budget would never reach
    // one).
    let requests = requests.max(cores * epoch * 3);
    println!(
        "Fig. 8 addendum — §8 hot-set migration, {cores} core(s), 2^{log2_n} x 64 B values, \
         Zipf({theta}) scrambled keys, epoch {epoch}, {requests} requests/point\n"
    );
    let striped = |m: &Machine| Placement::Striped {
        slices: (0..cores).map(|c| m.closest_slice(c)).collect(),
    };
    let striped_hot = move |m: &Machine| Placement::StripedHot {
        slices: (0..cores).map(|c| m.closest_slice(c)).collect(),
        hot_per_core,
    };
    type StudyConfig<'a> = (&'a str, &'a dyn Fn(&Machine) -> Placement, MigrationMode);
    let configs: [StudyConfig<'_>; 3] = [
        ("Striped (static)", &striped, MigrationMode::Off),
        ("StripedHot", &striped_hot, MigrationMode::Off),
        (
            "StripedHot+migrate",
            &striped_hot,
            MigrationMode::Always { epoch },
        ),
    ];
    let mut t = Table::new([
        "Config",
        "HotHit%",
        "MTPS",
        "Cycles/req",
        "Migrated",
        "MigCycles",
    ]);
    let mut reports = Vec::new();
    for (label, make_placement, migration) in configs {
        let rep = run_config(
            n_values,
            make_placement,
            theta,
            950,
            requests,
            cores,
            execution,
            true,
            migration,
            None,
        )?;
        t.row([
            label.to_string(),
            f(rep.hot_hit_rate() * 100.0, 1),
            f(rep.tps / 1e6, 3),
            f(rep.cycles_per_request, 1),
            rep.migrated.to_string(),
            rep.migration_cycles.to_string(),
        ]);
        reports.push(rep);
    }
    println!("{}", t.render());
    let [stat, hot, mig] = &reports[..] else {
        unreachable!()
    };
    println!(
        "hot-hit-rate delta vs static Striped: {:+.1} pts migrated, {:+.1} pts unmigrated",
        (mig.hot_hit_rate() - stat.hot_hit_rate()) * 100.0,
        (hot.hot_hit_rate() - stat.hot_hit_rate()) * 100.0
    );
    println!(
        "mean-latency delta vs static Striped: {:+.1}% migrated, {:+.1}% unmigrated",
        (mig.cycles_per_request - stat.cycles_per_request) / stat.cycles_per_request * 100.0,
        (hot.cycles_per_request - stat.cycles_per_request) / stat.cycles_per_request * 100.0
    );
    println!(
        "\nStatic Striped has no hot area (hot-hit-rate 0 by construction); StripedHot \
         pins each core's first {hot_per_core} class keys in its closest slice; with \
         --migrate the per-core HotMigrator re-fills those slots with the epoch's \
         observed hot set through timed swaps (cost in MigCycles, included in busy \
         time). Keys are scrambled, so the Zipf head starts cold in every config."
    );
    Ok(())
}

/// The `--churn=<epoch>` study: hot-set churn (each client's rank→key
/// mapping rotates every phase, so the popular keys go cold three times
/// per run) served by a StripedHot layout under three policies — no
/// migration, §8 always-migrate, and the cost-aware self-tuning
/// controller. The claim under test: economics beat both extremes on
/// TPS, and the cost-aware controller never executes a swap at a
/// projected loss.
#[allow(clippy::too_many_arguments)]
fn run_churn_study(
    n_values: usize,
    log2_n: u32,
    theta: f64,
    epoch: usize,
    requests: usize,
    cores: usize,
    execution: Execution,
) -> Result<(), Box<dyn std::error::Error>> {
    let class_len = n_values / cores;
    let hot_per_core = (20_000 / cores).min(class_len / 8).max(1);
    // Every core sees at least six epoch boundaries (two per phase), so
    // the controller gets a convergence window inside each phase even
    // at --smoke scale.
    let requests = requests.max(cores * epoch * 6);
    let phases = 3usize;
    let phase_len = (requests / cores / phases).max(1) as u64;
    // Any non-zero rotation lands on a disjoint key set (clients
    // scramble their ranks); a third of the class keeps the three
    // phases' heads pairwise far apart.
    let step = (class_len as u64 / 3).max(1);
    let schedule = PhaseSchedule::hot_set_churn(phases, phase_len, step);
    println!(
        "Fig. 8 addendum — cost-aware migration under hot-set churn, {cores} core(s), \
         2^{log2_n} x 64 B values, Zipf({theta}) scrambled keys, {phases} phases x \
         {phase_len} draws/client (rank rotation {step}), epoch {epoch}, \
         {requests} requests/point\n"
    );
    let striped_hot = move |m: &Machine| Placement::StripedHot {
        slices: (0..cores).map(|c| m.closest_slice(c)).collect(),
        hot_per_core,
    };
    let configs: [(&str, MigrationMode); 3] = [
        ("StripedHot (static)", MigrationMode::Off),
        ("Always-migrate", MigrationMode::Always { epoch }),
        ("Cost-aware", MigrationMode::CostAware { epoch }),
    ];
    let mut t = Table::new([
        "Config",
        "HotHit%",
        "MTPS",
        "Cycles/req",
        "Migrated",
        "Vetoed",
        "Deferred",
        "AtLoss",
        "MigCycles",
    ]);
    let mut reports = Vec::new();
    for (label, migration) in configs {
        let rep = run_config(
            n_values,
            &striped_hot,
            theta,
            950,
            requests,
            cores,
            execution,
            true,
            migration,
            Some(&schedule),
        )?;
        t.row([
            label.to_string(),
            f(rep.hot_hit_rate() * 100.0, 1),
            f(rep.tps / 1e6, 3),
            f(rep.cycles_per_request, 1),
            rep.migrated.to_string(),
            rep.swaps_vetoed.to_string(),
            rep.swaps_deferred.to_string(),
            rep.swaps_at_loss.to_string(),
            rep.migration_cycles.to_string(),
        ]);
        reports.push(rep);
    }
    println!("{}", t.render());
    let [stat, always, aware] = &reports[..] else {
        unreachable!()
    };
    println!(
        "cost-aware TPS delta: {:+.1}% vs static, {:+.1}% vs always-migrate",
        (aware.tps - stat.tps) / stat.tps * 100.0,
        (aware.tps - always.tps) / always.tps * 100.0
    );
    println!(
        "cost-aware swaps at a projected loss: {} (always-migrate executed {})",
        aware.swaps_at_loss, always.swaps_at_loss
    );
    println!(
        "\nEvery phase rotates each client's rank->key mapping, so the Zipf head \
         becomes a disjoint, cold key set. Always-migrate re-fills whole hot pools \
         every epoch and pays for the unprofitable tail (AtLoss counts swaps whose \
         projected benefit was below the measured swap cost); the cost-aware \
         controller swaps only candidates that clear its running cost estimate, \
         defers past its batch cap, and backs off once the hot set is captured."
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(1, 150_000);
    let args: Vec<String> = std::env::args().collect();
    let default_log2 = if scale.smoke { 14 } else { 21 };
    let log2_n: u32 = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_log2);
    let n_values = 1usize << log2_n;
    let cores: usize = flag(&args, "--cores=").unwrap_or(1);
    let execution = scale.execution(cores);
    let zipf: f64 = flag(&args, "--zipf=").unwrap_or(0.99);
    if args
        .iter()
        .any(|a| a == "--churn" || a.starts_with("--churn="))
    {
        let epoch = flag::<usize>(&args, "--churn=").unwrap_or(4096);
        let res = run_churn_study(
            n_values,
            log2_n,
            zipf,
            epoch,
            scale.packets,
            cores,
            execution,
        );
        bench::eprint_sched_totals("fig08_kvs");
        return res;
    }
    if let Some(epoch) = flag::<usize>(&args, "--migrate=") {
        let res = run_migration_study(
            n_values,
            log2_n,
            zipf,
            epoch,
            scale.packets,
            cores,
            execution,
        );
        bench::eprint_sched_totals("fig08_kvs");
        return res;
    }
    // NOTE: --parallel deliberately does not change this banner — the
    // golden-figure regression diffs serial and parallel stdout against
    // the same snapshot (bit-identical output is the contract).
    println!(
        "Fig. 8 — emulated KVS, {cores} core(s), 2^{log2_n} x 64 B values, {} requests/point\n",
        scale.packets
    );
    // Hot set sized to half a slice (the §3 rule of thumb).
    let hot = Placement::HotSliceAware {
        slice: 0,
        hot_count: 20_000,
    };
    let mut t = Table::new([
        "Workload",
        "SliceAll-Skewed",
        "SliceHot-Skewed",
        "Normal-Skewed",
        "SliceHot-Uniform",
        "Normal-Uniform",
    ]);
    let mut improvements = Vec::new();
    for (label, permille) in [("100% GET", 1000u32), ("95% GET", 950), ("50% GET", 500)] {
        let mut cells = vec![label.to_string()];
        let mut by_cfg = Vec::new();
        for (placement, theta) in [
            (Placement::SliceAware { slice: 0 }, zipf),
            (hot.clone(), zipf),
            (Placement::Normal, zipf),
            (hot.clone(), 0.0),
            (Placement::Normal, 0.0),
        ] {
            let tps = run_config(
                n_values,
                &|_| placement.clone(),
                theta,
                permille,
                scale.packets,
                cores,
                execution,
                false,
                MigrationMode::Off,
                None,
            )?
            .tps / 1e6;
            by_cfg.push(tps);
            cells.push(f(tps, 3));
        }
        improvements.push((label, (by_cfg[1] - by_cfg[2]) / by_cfg[2] * 100.0));
        t.row(cells);
    }
    println!("{}(all values in MTPS)\n", t.render());
    for (label, imp) in improvements {
        println!("hot-slice skewed improvement at {label}: {:+.1}%", imp);
    }
    println!(
        "\nPaper Fig. 8 (2^24 values): skewed slice-aware 21.26/20.91/18.42 vs normal \
         18.95/18.76/17.21 MTPS (+12.2%/+11.4%/+7.0%); uniform ~6.8 both (DRAM-bound).\n\
         Under an LRU LLC, placing *all* values in one slice trades away 7/8 of \
         the cache's capacity and cancels the latency gain; placing the *hot set* \
         (the §8 refinement) keeps the direction of the paper's result. See \
         EXPERIMENTS.md."
    );
    bench::eprint_sched_totals("fig08_kvs");
    Ok(())
}
