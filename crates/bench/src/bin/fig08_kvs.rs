//! Fig. 8: emulated KVS — average transactions per second for GET/SET
//! mixes, Zipf(0.99) and uniform keys, slice-aware vs. normal values.
//!
//! One serving core; requests in 128 B TCP packets through the NIC path.
//! Scale note: the paper's store is 2^24 64 B values (1 GB). The default
//! here is 2^21 (128 MB — still 6.4x the LLC, preserving the hit-rate
//! structure); pass a third argument `24` to run the full-size store.

use engine::Execution;
use kvs::proto::RequestGen;
use kvs::server::{flow_for_queue, run_server, ServerConfig};
use kvs::store::{KvStore, Placement};
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port};
use rte::steering::{Rss, Steering};
use slice_aware::alloc::SliceAllocator;
use trafficgen::{FlowTuple, ZipfGen};
use xstats::report::{f, Table};

fn run_config(
    n_values: usize,
    placement: Placement,
    theta: f64,
    get_permille: u32,
    requests: usize,
    cores: usize,
    execution: Execution,
) -> Result<f64, Box<dyn std::error::Error>> {
    // The slice-aware carving needs ~slices x the store's footprint.
    let store_bytes = n_values * 64;
    let region_bytes = (store_bytes * 9).max(64 << 20);
    let mut m = Machine::new(
        MachineConfig::haswell_e5_2667_v3()
            .with_dram_capacity(region_bytes + store_bytes + (256 << 20)),
    );
    let region = m.mem_mut().alloc(region_bytes, 1 << 20)?;
    let hash = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| hash.slice_of(pa));
    let store = KvStore::build(&mut m, &mut alloc, n_values, placement.clone())?;
    let mut pool = MbufPool::create(&mut m, (1024 * cores) as u32, 128, 2048)?;
    let mut port = Port::new(0, Steering::Rss(Rss::new(cores)), 256);
    let mut gens: Vec<RequestGen> = if cores == 1 {
        let keygen = ZipfGen::new(n_values as u64, theta, 4242);
        vec![RequestGen::new(keygen, get_permille, 77)]
    } else {
        // Multi-queue (§8): each queue's client draws from its own key
        // class so concurrent workers' SETs stay disjoint.
        let base = FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
        (0..cores)
            .map(|q| {
                let flow = flow_for_queue(&mut port, base, q);
                let keygen = ZipfGen::new((n_values / cores) as u64, theta, 4242 + q as u64);
                RequestGen::new(keygen, get_permille, 77 + q as u64)
                    .with_flow(flow)
                    .with_key_partition(cores as u32, q as u32)
            })
            .collect()
    };
    let mut policy = FixedHeadroom(128);
    // Warm-up pass (the paper averages many runs on a hot server).
    let warm = ServerConfig::fig8(requests / 4, get_permille, 1)
        .with_cores(cores)
        .with_execution(execution);
    run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &warm,
    );
    let cfg = ServerConfig::fig8(requests, get_permille, 1)
        .with_cores(cores)
        .with_execution(execution);
    let rep = run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &cfg,
    );
    if std::env::var("KVS_DEBUG").is_ok() {
        eprintln!(
            "  [{placement:?} theta={theta} get={get_permille}] cycles/request = {:.1}",
            rep.cycles_per_request
        );
    }
    Ok(rep.tps / 1e6)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = bench::Scale::from_args(1, 150_000);
    let args: Vec<String> = std::env::args().collect();
    let default_log2 = if scale.smoke { 14 } else { 21 };
    let log2_n: u32 = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_log2);
    let n_values = 1usize << log2_n;
    let cores: usize = args
        .iter()
        .find_map(|a| a.strip_prefix("--cores=").and_then(|v| v.parse().ok()))
        .unwrap_or(1);
    let execution = scale.execution(cores);
    // NOTE: --parallel deliberately does not change this banner — the
    // golden-figure regression diffs serial and parallel stdout against
    // the same snapshot (bit-identical output is the contract).
    println!(
        "Fig. 8 — emulated KVS, {cores} core(s), 2^{log2_n} x 64 B values, {} requests/point\n",
        scale.packets
    );
    // Hot set sized to half a slice (the §3 rule of thumb).
    let hot = Placement::HotSliceAware {
        slice: 0,
        hot_count: 20_000,
    };
    let mut t = Table::new([
        "Workload",
        "SliceAll-Skewed",
        "SliceHot-Skewed",
        "Normal-Skewed",
        "SliceHot-Uniform",
        "Normal-Uniform",
    ]);
    let mut improvements = Vec::new();
    for (label, permille) in [("100% GET", 1000u32), ("95% GET", 950), ("50% GET", 500)] {
        let mut cells = vec![label.to_string()];
        let mut by_cfg = Vec::new();
        for (placement, theta) in [
            (Placement::SliceAware { slice: 0 }, 0.99),
            (hot.clone(), 0.99),
            (Placement::Normal, 0.99),
            (hot.clone(), 0.0),
            (Placement::Normal, 0.0),
        ] {
            let tps = run_config(
                n_values,
                placement,
                theta,
                permille,
                scale.packets,
                cores,
                execution,
            )?;
            by_cfg.push(tps);
            cells.push(f(tps, 3));
        }
        improvements.push((label, (by_cfg[1] - by_cfg[2]) / by_cfg[2] * 100.0));
        t.row(cells);
    }
    println!("{}(all values in MTPS)\n", t.render());
    for (label, imp) in improvements {
        println!("hot-slice skewed improvement at {label}: {:+.1}%", imp);
    }
    println!(
        "\nPaper Fig. 8 (2^24 values): skewed slice-aware 21.26/20.91/18.42 vs normal \
         18.95/18.76/17.21 MTPS (+12.2%/+11.4%/+7.0%); uniform ~6.8 both (DRAM-bound).\n\
         Under an LRU LLC, placing *all* values in one slice trades away 7/8 of \
         the cache's capacity and cancels the latency gain; placing the *hot set* \
         (the §8 refinement) keeps the direction of the paper's result. See \
         EXPERIMENTS.md."
    );
    Ok(())
}
