//! A tiny in-tree timing harness for the `benches/` targets.
//!
//! The workspace builds fully offline, so the benches use this ~100-line
//! harness instead of an external framework: adaptive iteration counts,
//! median-of-samples reporting, and a `black_box` that defeats
//! const-folding. Run with
//! `cargo bench -p bench --features bench-harness`.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque identity function: keeps the optimiser from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One benchmark group; prints a header and times closures under it.
pub struct Group {
    name: String,
    warmup: Duration,
    measure: Duration,
}

impl Group {
    /// A group with default times (0.3 s warm-up, 1 s measurement).
    pub fn new(name: &str) -> Self {
        println!("\n== {name} ==");
        Self {
            name: name.to_string(),
            warmup: Duration::from_millis(300),
            measure: Duration::from_secs(1),
        }
    }

    /// Overrides the measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Overrides the warm-up time.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Times `f`, printing median/mean ns per iteration.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly 1/20 of the measurement window per sample.
        let cal_start = Instant::now();
        let mut iters_done = 0u64;
        while cal_start.elapsed() < self.warmup {
            f();
            iters_done += 1;
        }
        let per_iter = self.warmup.as_nanos() as f64 / iters_done.max(1) as f64;
        let target_sample_ns = (self.measure.as_nanos() as f64 / 20.0).max(1.0);
        let iters_per_sample = ((target_sample_ns / per_iter).ceil() as u64).clamp(1, 1 << 24);

        let mut samples: Vec<f64> = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || samples.len() < 5 {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            if samples.len() >= 1000 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{:<40} {:>12.1} ns/iter (median)  {:>12.1} ns/iter (mean)  [{} samples x {} iters]",
            format!("{}/{name}", self.name),
            median,
            mean,
            samples.len(),
            iters_per_sample
        );
    }

    /// Times `f` with a fresh `setup()` product per sample (for
    /// consuming benchmarks).
    pub fn bench_with_setup<S, T, F: FnMut(T)>(&self, name: &str, mut setup: S, mut f: F)
    where
        S: FnMut() -> T,
    {
        let mut samples: Vec<f64> = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.measure || samples.len() < 5 {
            let input = setup();
            let t = Instant::now();
            f(input);
            samples.push(t.elapsed().as_nanos() as f64);
            if samples.len() >= 1000 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!(
            "{:<40} {:>12.1} ns/iter (median)  [{} samples, setup excluded]",
            format!("{}/{name}", self.name),
            median,
            samples.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let g = Group::new("selftest")
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut acc = 0u64;
        g.bench("noop_add", || {
            acc = black_box(acc.wrapping_add(1));
        });
        assert!(acc > 0);
    }

    #[test]
    fn bench_with_setup_runs() {
        let g = Group::new("selftest2")
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        g.bench_with_setup(
            "consume_vec",
            || vec![1u8; 64],
            |v| {
                black_box(v.len());
            },
        );
    }
}
