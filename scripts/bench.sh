#!/usr/bin/env bash
# Engine wall-clock benchmark. Times a fixed set of figure workloads
# (release build, median of 3 runs each), records each workload's epoch
# efficiency from the `[sched]` stderr line, and measures the
# empty-epoch tax directly by running fig08_kvs under both the
# event-driven scheduler (default) and the retained reference
# tick-stepper (`--scheduler=reference`). Emits BENCH_engine.json at
# the repo root; EXPERIMENTS.md quotes the committed snapshot.
#
# Stdout is bit-identical across schedulers and runs (the determinism
# gate enforces it), so only wall clock and the [sched] counters move.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> release build"
cargo build --release -q -p bench

OUT="BENCH_engine.json"

# Integer milliseconds of wall clock for one run, output discarded.
time_ms() {
    local t0 t1
    t0=$(date +%s%N)
    "$@" > /dev/null 2> /dev/null
    t1=$(date +%s%N)
    echo $(( (t1 - t0) / 1000000 ))
}

median3() { printf '%s\n' "$@" | sort -n | sed -n '2p'; }

# The `[sched] ...` stderr line of one run (stdout discarded).
sched_line() { "$@" 2>&1 > /dev/null | grep '^\[sched\]'; }

# Numeric field `$2` out of a [sched] line `$1` (strips a trailing %).
field() { sed -n "s/.*$2=\([0-9.]*\).*/\1/p" <<< "$1"; }

# Fixed workload set: every engine-backed subsystem is represented
# (multi-queue KVS, migration study, NFV forward + chained pipeline,
# open-loop overload chaos, multi-tenant isolation controller) at
# --smoke scale so the benchmark finishes
# in seconds and CI can afford to re-run it.
NAMES=(fig08_kvs_c4 fig08_kvs_migrate fig13_forward fig14_chain fig_knee_chaos fig_tenants fig_scale_kvs)
declare -A CMDS=(
    [fig08_kvs_c4]="fig08_kvs --smoke --cores=4"
    [fig08_kvs_migrate]="fig08_kvs --smoke --zipf=0.99 --migrate=4096 --cores=4"
    [fig13_forward]="fig13_forward --smoke"
    [fig14_chain]="fig14_chain --smoke"
    [fig_knee_chaos]="fig_knee_kvs --smoke --chaos"
    [fig_tenants]="fig_tenants --smoke"
    [fig_scale_kvs]="fig_scale_kvs --smoke"
)

json_workloads=""
for name in "${NAMES[@]}"; do
    # shellcheck disable=SC2086 # word-splitting the argv is the point
    set -- ${CMDS[$name]}
    bin="./target/release/$1"; shift
    echo "==> ${name}: ${bin##*/} $*"
    t1=$(time_ms "$bin" "$@")
    t2=$(time_ms "$bin" "$@")
    t3=$(time_ms "$bin" "$@")
    med=$(median3 "$t1" "$t2" "$t3")
    line=$(sched_line "$bin" "$@")
    echo "    wall_ms=[${t1},${t2},${t3}] median=${med}"
    echo "    ${line}"
    json_workloads+=$(printf '
    {
      "name": "%s",
      "cmd": "%s",
      "wall_ms_runs": [%s, %s, %s],
      "wall_ms_median": %s,
      "epochs_dispatched": %s,
      "epochs_with_work": %s,
      "events_processed": %s,
      "epoch_efficiency_pct": %s
    },' "$name" "${CMDS[$name]}" "$t1" "$t2" "$t3" "$med" \
        "$(field "$line" epochs_dispatched)" \
        "$(field "$line" epochs_with_work)" \
        "$(field "$line" events_processed)" \
        "$(field "$line" epoch_efficiency)")
done
json_workloads=${json_workloads%,}

# The headline comparison: same figure, same stdout, two schedulers.
# The epochs_dispatched ratio is the empty-epoch tax the event-driven
# scheduler removes; the acceptance bar is >= 50x.
#
# Measurement protocol for the time axis: a reference no-op epoch costs
# only ~55 ns, so on the default fig08 profile the tax is a couple of
# percent of runtime — far below this shared container's run-to-run
# noise (±15 % wall clock). Two countermeasures: (a) a scheduler-bound
# profile — 2^10-value store, 200k requests — where per-offer dispatch
# overhead is the largest fixed cost, and (b) min of 5 *interleaved*
# CPU-time (user+sys) rounds, which cancels slow-neighbor drift that a
# median of back-to-back wall clocks cannot.
CMP=(1 200000 10 --cores=4)
CMP_ROUNDS=5
cpu_ms() {
    local out
    out=$( { TIMEFORMAT='%U %S'; time "$@" > /dev/null 2> /dev/null; } 2>&1 )
    awk -v l="$out" 'BEGIN { split(l, a, " "); printf "%d", (a[1] + a[2]) * 1000 }'
}
echo "==> scheduler comparison: fig08_kvs ${CMP[*]} (min of ${CMP_ROUNDS} interleaved CPU-time rounds)"
bin=./target/release/fig08_kvs
ev_t=99999999; rf_t=99999999
for (( i = 1; i <= CMP_ROUNDS; i++ )); do
    ev=$(cpu_ms "$bin" "${CMP[@]}")
    rf=$(cpu_ms "$bin" "${CMP[@]}" --scheduler=reference)
    (( ev < ev_t )) && ev_t=$ev
    (( rf < rf_t )) && rf_t=$rf
    echo "    round ${i}: event_cpu_ms=${ev} reference_cpu_ms=${rf}"
done
ev_line=$(sched_line "$bin" "${CMP[@]}")
rf_line=$(sched_line "$bin" "${CMP[@]}" --scheduler=reference)
ev_ep=$(field "$ev_line" epochs_dispatched)
rf_ep=$(field "$rf_line" epochs_dispatched)
reduction=$(awk -v r="$rf_ep" -v e="$ev_ep" 'BEGIN { printf "%.1f", r / e }')
speedup=$(awk -v r="$rf_t" -v e="$ev_t" 'BEGIN { printf "%.2f", r / e }')
echo "    event:     cpu_ms=${ev_t} ${ev_line}"
echo "    reference: cpu_ms=${rf_t} ${rf_line}"
echo "    epoch reduction: ${reduction}x   cpu-time speedup: ${speedup}x"

# The dispatch path under a magnifying glass: the in-tree harness
# benches one closed-loop round (the run_server offer shape, zero-work
# app) and one bare empty time advance under both schedulers. Tight
# median-of-samples loops resolve the tens-of-nanoseconds scheduler
# delta that the figure-scale comparison above cannot.
echo "==> dispatch-path microbench (cargo bench --bench sched)"
bench_out=$(cargo bench -p bench --features bench-harness --bench sched 2> /dev/null)
sed -n 's/^sched_dispatch/    sched_dispatch/p' <<< "$bench_out"
# Min of the (repeated, interleaved) medians for one bench name: the
# quiet-window value, robust to multi-second neighbour drift.
bench_median() {
    awk -v n="$1" '$1 ~ n"$" { if (m == "" || $2 + 0 < m) m = $2 + 0 } END { print m }' <<< "$bench_out"
}
round_ev=$(bench_median "closed_loop_round_event")
round_rf=$(bench_median "closed_loop_round_reference")
adv_ev=$(bench_median "empty_advance_event")
adv_rf=$(bench_median "empty_advance_reference")
round_speedup=$(awk -v r="$round_rf" -v e="$round_ev" 'BEGIN { printf "%.2f", r / e }')
adv_speedup=$(awk -v r="$adv_rf" -v e="$adv_ev" 'BEGIN { printf "%.2f", r / e }')
echo "    closed-loop round speedup: ${round_speedup}x   empty advance speedup: ${adv_speedup}x"

cat > "$OUT" <<EOF
{
  "benchmark": "engine event-driven scheduler",
  "protocol": "release build, median of 3 runs, --smoke scale",
  "workloads": [${json_workloads}
  ],
  "scheduler_comparison": {
    "cmd": "fig08_kvs ${CMP[*]}",
    "protocol": "min of ${CMP_ROUNDS} interleaved CPU-time (user+sys) rounds; scheduler-bound profile (2^10-value store) so dispatch overhead dominates per-offer cost",
    "event_driven": {
      "cpu_ms_min": ${ev_t},
      "epochs_dispatched": ${ev_ep},
      "epoch_efficiency_pct": $(field "$ev_line" epoch_efficiency)
    },
    "reference_tick": {
      "cpu_ms_min": ${rf_t},
      "epochs_dispatched": ${rf_ep},
      "epoch_efficiency_pct": $(field "$rf_line" epoch_efficiency)
    },
    "epochs_dispatched_reduction": ${reduction},
    "cpu_time_speedup": ${speedup}
  },
  "dispatch_path_microbench": {
    "protocol": "in-tree harness (cargo bench --bench sched), median ns/iter; zero-work echo app, 4 workers, serial execution",
    "closed_loop_round": {
      "description": "32 offers at the synced now + one step, the run_server shape",
      "event_ns": ${round_ev},
      "reference_ns": ${round_rf},
      "wall_clock_speedup": ${round_speedup}
    },
    "empty_advance": {
      "description": "one run_until past a workless engine, the open-loop gap shape",
      "event_ns": ${adv_ev},
      "reference_ns": ${adv_rf},
      "wall_clock_speedup": ${adv_speedup}
    }
  }
}
EOF
echo "==> wrote ${OUT}"
