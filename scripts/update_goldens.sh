#!/usr/bin/env bash
# Regenerates the --smoke golden snapshots the figure-regression test
# (crates/bench/tests/figures_golden.rs) diffs against.
#
# Run this after any change that intentionally shifts figure output
# (new defaults, engine semantics, report format), review the diff like
# any other code change, and commit the updated snapshots:
#
#   scripts/update_goldens.sh
#   git diff crates/bench/tests/golden/
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p bench
mkdir -p crates/bench/tests/golden

bins=(
    table01_cachespec fig04_hash fig05_latency fig06_speedup
    fig07_ops fig08_kvs fig12_lowrate fig13_forward fig14_chain
    fig15_knee fig_knee_kvs fig16_table4_skylake fig17_isolation
    fig_tenants fig_scale_kvs ext_pipeline headroom_dist kvs_probe
    skylake_nfv calibrate
)
for bin in "${bins[@]}"; do
    echo "-> ${bin}"
    "./target/release/${bin}" --smoke > "crates/bench/tests/golden/${bin}.txt"
done

# The §8 hot-set migration study is a second output mode of fig08_kvs
# with its own snapshot.
echo "-> fig08_kvs (migration study)"
./target/release/fig08_kvs --smoke --zipf=0.99 --migrate=4096 --cores=4 \
    > crates/bench/tests/golden/fig08_kvs_migrate.txt

# The cost-aware-migration churn study is a third output mode of
# fig08_kvs with its own snapshot.
echo "-> fig08_kvs (churn study)"
./target/release/fig08_kvs --smoke --zipf=0.99 --churn=4096 --cores=4 \
    > crates/bench/tests/golden/fig08_kvs_churn.txt

# The overload chaos scenario is a second output mode of fig_knee_kvs
# with its own snapshot.
echo "-> fig_knee_kvs (chaos scenario)"
./target/release/fig_knee_kvs --smoke --chaos \
    > crates/bench/tests/golden/fig_knee_kvs_chaos.txt

echo "golden snapshots updated"
