#!/usr/bin/env bash
# Offline CI gate for the workspace. Everything here runs without
# network access: no crates.io dependencies, no rustup downloads.
#
#   scripts/ci.sh         # fmt + clippy + tests (debug) + determinism
#   scripts/ci.sh full    # ...plus release build, bench-harness check,
#                         # and a --smoke run of every figure binary
#                         # (serial AND --parallel)
#   scripts/ci.sh smoke   # only the figure-binary smoke runs
#   scripts/ci.sh det     # only the determinism gate
set -euo pipefail
cd "$(dirname "$0")/.."

# Every experiment binary, run end to end at --smoke scale (one run,
# tiny packet counts, shrunken stores). Proves the figures still
# *execute* after a refactor; EXPERIMENTS.md records full-scale numbers.
smoke() {
    echo "==> figure-binary smoke runs (--smoke)"
    cargo build --release -q -p bench
    local bins=(
        table01_cachespec fig04_hash fig05_latency fig06_speedup
        fig07_ops fig08_kvs fig12_lowrate fig13_forward fig14_chain
        fig15_knee fig_knee_kvs fig16_table4_skylake fig17_isolation
        fig_tenants fig_scale_kvs ext_pipeline headroom_dist kvs_probe
        skylake_nfv calibrate
    )
    for bin in "${bins[@]}"; do
        echo "    -> ${bin}"
        "./target/release/${bin}" --smoke > /dev/null
        "./target/release/${bin}" --smoke --parallel > /dev/null
    done
    # The §8 hot-set migration study: a skewed multi-core run that must
    # migrate (its golden pins hot-hit-rate above static Striped and a
    # non-zero migration-cycle ledger), in both execution modes.
    echo "    -> fig08_kvs (migration study)"
    ./target/release/fig08_kvs --smoke --zipf=0.99 --migrate=4096 --cores=4 > /dev/null
    ./target/release/fig08_kvs --smoke --parallel --zipf=0.99 --migrate=4096 --cores=4 > /dev/null
    # The cost-aware migration churn study, in both execution modes,
    # with the acceptance invariant pinned: the cost-aware controller
    # must execute ZERO swaps at a projected loss (its golden also pins
    # the full table, but this assertion survives golden re-records).
    echo "    -> fig08_kvs (churn study)"
    local churn_out
    churn_out="$(./target/release/fig08_kvs --smoke --zipf=0.99 --churn=4096 --cores=4 2>/dev/null)"
    ./target/release/fig08_kvs --smoke --parallel --zipf=0.99 --churn=4096 --cores=4 > /dev/null
    if ! grep -q '^cost-aware swaps at a projected loss: 0 ' <<<"${churn_out}"; then
        echo "FAIL: cost-aware migration executed swaps at a projected loss" >&2
        grep 'projected loss' <<<"${churn_out}" >&2 || true
        exit 1
    fi
    # The overload chaos scenario: flash crowd + link flap + RX stall,
    # graceful degradation and recovery, in both execution modes.
    echo "    -> fig_knee_kvs (chaos scenario)"
    ./target/release/fig_knee_kvs --smoke --chaos > /dev/null
    ./target/release/fig_knee_kvs --smoke --parallel --chaos > /dev/null
}

# Determinism gate: the differential suite (serial vs parallel AND
# event-driven vs reference tick-stepper), a byte-level double-run diff
# of an engine-backed figure binary under --parallel, a byte-level
# scheduler diff (the event-driven scheduler must print the same stdout
# as the retained tick-stepper), and the pinned epoch ceiling (the
# empty-epoch tax must stay dead).
det() {
    echo "==> determinism: differential suite (serial/parallel + reference/event-driven)"
    cargo test -p engine --test differential -q
    # Same suite single-threaded: harness scheduling must not matter.
    cargo test -p engine --test differential -q -- --test-threads=1
    echo "==> determinism: double-run diff of fig08_kvs --smoke --parallel"
    cargo build --release -q -p bench
    local out_a out_b
    out_a="$(mktemp)"
    out_b="$(mktemp)"
    ./target/release/fig08_kvs --smoke --parallel --cores=4 > "$out_a"
    ./target/release/fig08_kvs --smoke --parallel --cores=4 > "$out_b"
    diff -u "$out_a" "$out_b"
    echo "==> determinism: scheduler diff of fig08_kvs --smoke (event vs reference)"
    ./target/release/fig08_kvs --smoke --cores=4 --scheduler=reference > "$out_b"
    ./target/release/fig08_kvs --smoke --cores=4 > "$out_a"
    diff -u "$out_b" "$out_a"
    # The multi-tenant controller study: the stateful isolation control
    # loop (streaks, cooldown, DDIO calm counter) must also be invisible
    # to scheduler choice and worker threading, at the byte level.
    echo "==> determinism: scheduler+mode diff of fig_tenants --smoke"
    ./target/release/fig_tenants --smoke > "$out_a"
    ./target/release/fig_tenants --smoke --parallel --scheduler=reference > "$out_b"
    diff -u "$out_a" "$out_b"
    # The scale study: streamed sketch quantiles, trace replay, and the
    # migrator must all be invisible to scheduler choice and worker
    # threading, at the byte level.
    echo "==> determinism: scheduler+mode diff of fig_scale_kvs --smoke"
    ./target/release/fig_scale_kvs --smoke > "$out_a"
    ./target/release/fig_scale_kvs --smoke --parallel --scheduler=reference > "$out_b"
    diff -u "$out_a" "$out_b"
    rm -f "$out_a" "$out_b"
    echo "==> scheduler: pinned epoch ceiling on fig08_kvs --smoke --cores=4"
    # The event-driven scheduler dispatches ~300 epochs here (one per
    # closed-loop round); the tick-stepper paid ~52k. The ceiling has
    # 2x headroom — above it, the empty-epoch tax is creeping back.
    local ceiling=600 sched dispatched
    sched="$(./target/release/fig08_kvs --smoke --cores=4 2>&1 >/dev/null | grep '^\[sched\]')"
    echo "    ${sched}"
    dispatched="$(sed -n 's/.*epochs_dispatched=\([0-9]*\).*/\1/p' <<<"${sched}")"
    if [[ -z "${dispatched}" ]] || (( dispatched == 0 || dispatched > ceiling )); then
        echo "FAIL: epochs_dispatched=${dispatched:-unparsed} outside (0, ${ceiling}]" >&2
        exit 1
    fi
}

if [[ "${1:-}" == "smoke" ]]; then
    smoke
    echo "CI OK"
    exit 0
fi

if [[ "${1:-}" == "det" ]]; then
    det
    echo "CI OK"
    exit 0
fi

echo "==> rustfmt (check only)"
cargo fmt --all --check

echo "==> clippy, all targets, warnings are errors"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> tests (whole workspace)"
cargo test --workspace -q

det

if [[ "${1:-}" == "full" ]]; then
    echo "==> release build"
    cargo build --release -q
    echo "==> bench harness compiles (not run)"
    cargo clippy --workspace --all-targets --features bench-harness -q -- -D warnings
    cargo bench -p bench --features bench-harness --no-run -q
    smoke
fi

echo "CI OK"
