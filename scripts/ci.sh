#!/usr/bin/env bash
# Offline CI gate for the workspace. Everything here runs without
# network access: no crates.io dependencies, no rustup downloads.
#
#   scripts/ci.sh         # fmt + clippy + tests (debug)
#   scripts/ci.sh full    # ...plus release build and bench-harness check
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> rustfmt (check only)"
cargo fmt --all --check

echo "==> clippy, all targets, warnings are errors"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> tests (whole workspace)"
cargo test --workspace -q

if [[ "${1:-}" == "full" ]]; then
    echo "==> release build"
    cargo build --release -q
    echo "==> bench harness compiles (not run)"
    cargo clippy --workspace --all-targets --features bench-harness -q -- -D warnings
    cargo bench -p bench --features bench-harness --no-run -q
fi

echo "CI OK"
