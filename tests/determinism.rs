//! Real-application differential determinism: the NFV run-to-completion
//! chain, the two-stage pipelined chain, and the KVS server each run the
//! same workload under [`Execution::Serial`] and
//! [`Execution::Parallel`], and the *complete* results — every counter,
//! every recorded latency sample — must be bit-identical.
//!
//! The engine-level grid lives in `crates/engine/tests/differential.rs`;
//! this file proves the property survives the real applications' state
//! (flow tables, LPM lookups, the shared KV store, cross-core
//! handoffs).

use engine::{Execution, Scheduler};
use kvs::proto::RequestGen;
use kvs::server::{flow_for_queue, run_server, MigrationMode, ServerConfig, ServerReport};
use kvs::store::{KvStore, Placement};
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use nfv::pipeline::{run_pipeline, PipelineConfig, PipelineHeadroom};
use nfv::runtime::{run_experiment, ChainSpec, HeadroomMode, RunConfig, RunResult, SteeringKind};
use rte::fault::{FaultPlan, Window};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port};
use rte::steering::{Rss, Steering};
use slice_aware::alloc::SliceAllocator;
use trafficgen::{ArrivalSchedule, CampusTrace, ZipfGen};

/// The NFV chain at one geometry/steering/fault point.
fn nfv_run(
    cores: usize,
    steering: SteeringKind,
    chain: ChainSpec,
    faulty: bool,
    execution: Execution,
) -> RunResult {
    let mut cfg = RunConfig::paper_defaults(
        chain,
        steering,
        HeadroomMode::CacheDirector {
            preferred_slices: 1,
        },
    );
    cfg.cores = cores;
    cfg.queue_depth = 64;
    cfg.mbufs = (4 * cores * 64) as u32;
    cfg.execution = execution;
    if faulty {
        cfg.faults = FaultPlan::frame_indexed()
            .with_seed(11)
            .with_corrupt_prob(0.03)
            .with_truncate_prob(0.05)
            .with_rx_stall(Window::new(100_000, 180_000));
    }
    let mut trace = CampusTrace::fixed_size(128, 96, 5);
    let mut sched = ArrivalSchedule::constant_pps(4_000_000.0);
    run_experiment(cfg, &mut trace, &mut sched, 4_000).expect("config fits")
}

#[test]
fn nfv_chain_results_are_identical_serial_vs_parallel() {
    for (cores, steering, chain, faulty) in [
        (2, SteeringKind::Rss, ChainSpec::MacSwap, false),
        (
            4,
            SteeringKind::FlowDirector,
            ChainSpec::RouterNaptLb {
                routes: 256,
                offload: true,
            },
            false,
        ),
        (
            4,
            SteeringKind::Rss,
            ChainSpec::RouterNaptLb {
                routes: 256,
                offload: false,
            },
            true,
        ),
    ] {
        let serial = nfv_run(cores, steering, chain, faulty, Execution::Serial);
        for threads in [1usize, 2, cores] {
            let par = nfv_run(
                cores,
                steering,
                chain,
                faulty,
                Execution::Parallel { threads },
            );
            // `RunResult` carries f64 latency vectors; Debug formatting
            // captures every bit that matters and makes the diff
            // readable on failure.
            assert_eq!(
                format!("{serial:?}"),
                format!("{par:?}"),
                "nfv cores={cores} {steering:?} faulty={faulty}: \
                 parallel({threads}) diverged"
            );
        }
    }
}

#[test]
fn pipelined_chain_results_are_identical_serial_vs_parallel() {
    for headroom in [PipelineHeadroom::Stock, PipelineHeadroom::Compromise] {
        let run = |execution: Execution| {
            run_pipeline(
                &PipelineConfig::new(headroom).with_execution(execution),
                64,
                2_000_000.0,
                6_000,
            )
            .expect("config fits")
        };
        let serial = run(Execution::Serial);
        for threads in [1usize, 2, 3] {
            let par = run(Execution::Parallel { threads });
            assert_eq!(
                format!("{serial:?}"),
                format!("{par:?}"),
                "pipeline {headroom:?}: parallel({threads}) diverged"
            );
        }
    }
}

/// The 4-core KVS server (§8 extension): striped key classes, one
/// client generator per queue. With migration on, the placement becomes
/// StripedHot, clients scramble their keys, and every core runs the
/// hot-set migration loop at engine-epoch boundaries — the timed swaps
/// go through the coordinator-side merge hook, which this suite must
/// prove bit-identical across execution modes (and, for the cost-aware
/// controller, across schedulers too).
fn kvs_run_on(
    execution: Execution,
    scheduler: Scheduler,
    migration: MigrationMode,
    theta: f64,
    requests: usize,
) -> ServerReport {
    let cores = 4;
    let migrate = migration != MigrationMode::Off;
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
    let region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let slices: Vec<usize> = (0..cores).map(|c| m.closest_slice(c)).collect();
    let placement = if migrate {
        Placement::StripedHot {
            slices,
            hot_per_core: 64,
        }
    } else {
        Placement::Striped { slices }
    };
    let store = KvStore::build(&mut m, &mut alloc, 4096, placement).unwrap();
    let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
    let mut port = Port::new(0, Steering::Rss(Rss::new(cores)), 256);
    let base = trafficgen::FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
    let mut gens: Vec<RequestGen> = (0..cores)
        .map(|q| {
            let flow = flow_for_queue(&mut port, base, q);
            let keygen = ZipfGen::new(4096 / cores as u64, theta, 11 + q as u64);
            let mut gen = RequestGen::new(keygen, 900, 7 + q as u64)
                .with_flow(flow)
                .with_key_partition(cores as u32, q as u32);
            if migrate {
                gen = gen.with_key_scramble(31 + q as u64);
            }
            gen
        })
        .collect();
    let mut policy = FixedHeadroom(128);
    let mut cfg = ServerConfig::fig8(requests, 900, 1)
        .with_cores(cores)
        .with_execution(execution);
    cfg.scheduler = scheduler;
    cfg.migration = migration;
    run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &cfg,
    )
}

/// Shorthand for the pre-existing cases: event-driven scheduling, the
/// always-migrate policy at epoch 500 when `migrate` is set.
fn kvs_run(execution: Execution, migrate: bool, theta: f64) -> ServerReport {
    let migration = if migrate {
        MigrationMode::Always { epoch: 500 }
    } else {
        MigrationMode::Off
    };
    kvs_run_on(execution, Scheduler::EventDriven, migration, theta, 6_000)
}

#[test]
fn kvs_server_results_are_identical_serial_vs_parallel() {
    let serial = kvs_run(Execution::Serial, false, 0.99);
    for threads in [1usize, 2, 4] {
        let par = kvs_run(Execution::Parallel { threads }, false, 0.99);
        assert_eq!(
            format!("{serial:?}"),
            format!("{par:?}"),
            "kvs: parallel({threads}) diverged"
        );
    }
    // And parallel is reproducible against itself.
    let a = kvs_run(Execution::Parallel { threads: 4 }, false, 0.99);
    let b = kvs_run(Execution::Parallel { threads: 4 }, false, 0.99);
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "kvs parallel repeat");
}

#[test]
fn kvs_migration_results_are_identical_serial_vs_parallel() {
    // Skewed keys: real migration traffic through the merge hook.
    let serial = kvs_run(Execution::Serial, true, 0.99);
    assert!(serial.migrated > 0, "the skewed case must actually migrate");
    for threads in [1usize, 2, 4] {
        let par = kvs_run(Execution::Parallel { threads }, true, 0.99);
        assert_eq!(
            format!("{serial:?}"),
            format!("{par:?}"),
            "kvs migrate zipf: parallel({threads}) diverged"
        );
    }
    let a = kvs_run(Execution::Parallel { threads: 4 }, true, 0.99);
    let b = kvs_run(Execution::Parallel { threads: 4 }, true, 0.99);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "kvs migrate parallel repeat"
    );
}

#[test]
fn kvs_cost_aware_migration_is_identical_across_modes_and_schedulers() {
    // The cost-aware controller is stateful across epochs (cost
    // estimate, calm counter, dormancy, epoch-length tuner), so any
    // dependence on *how many* merges the scheduler dispatches — rather
    // than on the noted access counts — would diverge here. Decisions
    // must be pure functions of per-epoch counts, which evolve only at
    // epochs with work; those coincide between the schedulers.
    // Epoch 1000 over partitioned Zipf(0.99): the hottest keys' nets
    // clear the ~800-cycle measured swap cost while the tail stays
    // below it, so every decision path (execute, veto, ledger) is live.
    let mode = MigrationMode::CostAware { epoch: 1000 };
    let reference = kvs_run_on(
        Execution::Serial,
        Scheduler::EventDriven,
        mode,
        0.99,
        12_000,
    );
    assert!(
        reference.migrated > 0,
        "the skewed cost-aware case must actually migrate"
    );
    assert!(
        reference.swaps_vetoed > 0,
        "the Zipf tail must produce vetoed candidates"
    );
    assert_eq!(
        reference.swaps_at_loss, 0,
        "cost-aware must never execute a swap at a projected loss"
    );
    for scheduler in [Scheduler::EventDriven, Scheduler::ReferenceTick] {
        for execution in [
            Execution::Serial,
            Execution::Parallel { threads: 2 },
            Execution::Parallel { threads: 4 },
        ] {
            let run = kvs_run_on(execution, scheduler, mode, 0.99, 12_000);
            assert_eq!(
                format!("{reference:?}"),
                format!("{run:?}"),
                "kvs cost-aware: {execution:?} under {scheduler:?} diverged"
            );
        }
    }
}

#[test]
fn kvs_migration_with_tied_counts_is_identical_serial_vs_parallel() {
    // Uniform keys: per-epoch access counts are riddled with ties, so
    // any HashMap-iteration-order dependence in the migrator's
    // promote/evict ordering would diverge here. The (count, key) total
    // order must keep it bit-identical.
    let serial = kvs_run(Execution::Serial, true, 0.0);
    assert!(serial.migrated > 0, "uniform churn must still migrate");
    for threads in [1usize, 2, 4] {
        let par = kvs_run(Execution::Parallel { threads }, true, 0.0);
        assert_eq!(
            format!("{serial:?}"),
            format!("{par:?}"),
            "kvs migrate uniform ties: parallel({threads}) diverged"
        );
    }
}

/// The multi-tenant chaos harness at one mode point.
fn tenancy_run(execution: Execution, scheduler: Scheduler) -> tenancy::run::TenancyReport {
    let cfg = tenancy::run::TenancyConfig {
        execution,
        scheduler,
        ..tenancy::run::TenancyConfig::new(tenancy::run::Regime::Online, 6_000)
    };
    tenancy::run::run_tenancy(&cfg)
}

#[test]
fn tenancy_controller_results_are_identical_across_modes_and_schedulers() {
    // The isolation controller is stateful across control epochs
    // (streaks, cooldown, calm counter, the held-p99 series), and its
    // observations come from worker-produced latency logs and merged
    // uncore counters — the maximal surface for a scheduler- or
    // thread-count dependence to leak in. The full report (per-tenant
    // ledgers, violation integrals, every controller action count) must
    // be bit-identical across the grid.
    let reference = tenancy_run(Execution::Serial, Scheduler::EventDriven);
    assert!(
        reference.moves > 0 && reference.ddio_shrinks > 0,
        "the online case must actually exercise the controller"
    );
    for scheduler in [Scheduler::EventDriven, Scheduler::ReferenceTick] {
        for execution in [
            Execution::Serial,
            Execution::Parallel { threads: 1 },
            Execution::Parallel { threads: 2 },
            Execution::Parallel { threads: 4 },
        ] {
            let run = tenancy_run(execution, scheduler);
            assert_eq!(
                format!("{reference:?}"),
                format!("{run:?}"),
                "tenancy: {execution:?} under {scheduler:?} diverged"
            );
        }
    }
}

#[test]
fn tenancy_per_tenant_ledgers_partition_the_aggregate_identities() {
    // Aggregate conservation must equal the sum of per-tenant
    // identities: each tenant's group ledger balances on its own, and
    // the groups sum to the run's totals — no frame is lost between or
    // double-counted across tenants. Checked in both execution modes.
    for execution in [Execution::Serial, Execution::Parallel { threads: 2 }] {
        let rep = tenancy_run(execution, Scheduler::EventDriven);
        let mut sums = (0u64, 0u64, 0u64, 0u64);
        for (group, tenant) in rep.per_group.iter().zip(&rep.tenants) {
            assert_eq!(
                group.offered + group.carried,
                group.delivered
                    + group.nic.total()
                    + group.admit.total()
                    + group.app_drops
                    + group.in_flight,
                "{} ({execution:?}): tenant ledger leaks frames",
                tenant.name
            );
            assert_eq!(group.offered, tenant.offered);
            assert_eq!(group.delivered, tenant.served);
            sums.0 += group.offered;
            sums.1 += group.delivered;
            sums.2 += group.nic.total() + group.admit.total();
            sums.3 += group.app_drops + group.in_flight + group.carried;
        }
        let offered: u64 = rep.tenants.iter().map(|t| t.offered).sum();
        let served: u64 = rep.tenants.iter().map(|t| t.served).sum();
        let rejected: u64 = rep.tenants.iter().map(|t| t.rejected).sum();
        assert_eq!(sums.0, offered, "{execution:?}: offered partition broken");
        assert_eq!(sums.1, served, "{execution:?}: delivered partition broken");
        assert_eq!(
            sums.2, rejected,
            "{execution:?}: rejection partition broken"
        );
        // The run has fully drained: nothing is still queued, in flight,
        // or silently dropped inside an app across any tenant.
        assert_eq!(sums.3, 0, "{execution:?}: residual frames after drain");
    }
}
