//! Integration tests asserting the paper's concrete numbers across
//! crates — the claims EXPERIMENTS.md records as exact matches.

use llc_sim::hash::{mask_of_bits, O0_BITS, O1_BITS, O2_BITS};
use llc_sim::machine::{Machine, MachineConfig};
use slice_aware::latency::profile_access_times;
use slice_aware::placement::PlacementPolicy;
use slice_aware::reverse::{reconstruct_hash, verify_hash};

#[test]
fn table1_cache_specification() {
    let c = MachineConfig::haswell_e5_2667_v3();
    assert_eq!(c.llc_slice.capacity_bytes(), 2_621_440, "LLC slice 2.5 MB");
    assert_eq!((c.llc_slice.ways, c.llc_slice.sets), (20, 2048));
    assert_eq!(c.l2.capacity_bytes(), 262_144, "L2 256 kB");
    assert_eq!((c.l2.ways, c.l2.sets), (8, 512));
    assert_eq!(c.l1.capacity_bytes(), 32_768, "L1 32 kB");
    assert_eq!((c.l1.ways, c.l1.sets), (8, 64));
}

#[test]
fn fig4_hash_reconstruction_matches_published_function() {
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
    let region = m.mem_mut().alloc(64 << 20, 64 << 20).unwrap();
    let rec = reconstruct_hash(&mut m, 0, region, 8);
    let window = (1u64 << (rec.max_bit + 1)) - 1;
    assert_eq!(rec.masks[0], mask_of_bits(O0_BITS) & window);
    assert_eq!(rec.masks[1], mask_of_bits(O1_BITS) & window);
    assert_eq!(rec.masks[2], mask_of_bits(O2_BITS) & window);
    assert_eq!(verify_hash(&mut m, 0, region, &rec, 32, 8, 1), 1.0);
}

#[test]
fn fig5_haswell_latency_shape() {
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
    let region = m.mem_mut().alloc(128 << 20, 1 << 20).unwrap();
    let prof = profile_access_times(&mut m, 0, region, 5);
    // Closest slice ≈ 34 cycles, max saving ≈ 20 cycles (6.25 ns).
    assert_eq!(prof.closest(), 0);
    assert!((prof.entries[0].read_cycles - 34.0).abs() < 1.0);
    let saving = prof.max_read_saving();
    assert!((18.0..=24.0).contains(&saving), "saving {saving}");
    // Bimodality: every even slice is cheaper than every odd slice.
    let worst_even = (0..8)
        .step_by(2)
        .map(|s| prof.entries[s].read_cycles)
        .fold(f64::NEG_INFINITY, f64::max);
    let best_odd = (1..8)
        .step_by(2)
        .map(|s| prof.entries[s].read_cycles)
        .fold(f64::INFINITY, f64::min);
    assert!(worst_even < best_odd);
    // Writes flat (Fig. 5b).
    let writes: Vec<f64> = prof.entries.iter().map(|e| e.write_cycles).collect();
    assert!(writes.iter().all(|&w| (w - writes[0]).abs() < 0.5));
}

#[test]
fn table4_skylake_placement() {
    let m = Machine::new(MachineConfig::skylake_gold_6134().with_dram_capacity(64 << 20));
    let p = PlacementPolicy::from_topology(&m);
    let primaries = [0, 4, 8, 12, 10, 14, 3, 15];
    let secondaries: [&[usize]; 8] = [&[2, 6], &[1], &[11], &[13], &[7, 9], &[16], &[5], &[17]];
    for c in 0..8 {
        assert_eq!(p.primary(c), primaries[c], "core {c}");
        assert_eq!(p.secondary(c), secondaries[c], "core {c}");
    }
}

#[test]
fn section42_headroom_distribution() {
    use cache_director::{headroom_distribution, CacheDirector, CACHEDIRECTOR_HEADROOM};
    use rte::mempool::MbufPool;
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(256 << 20));
    let pool = MbufPool::create(&mut m, 2048, CACHEDIRECTOR_HEADROOM, 2048).unwrap();
    let cd = CacheDirector::install(&mut m, &pool, 1, 0);
    assert_eq!(cd.stats().fallback, 0, "Haswell placement never falls back");
    let mut dist = headroom_distribution(&m, &pool, &cd);
    dist.sort_unstable();
    let median = dist[dist.len() / 2];
    let p95 = dist[dist.len() * 95 / 100];
    let max = *dist.last().unwrap();
    // Paper §4.2: median 256 B, 95% < 512 B, max 832 B.
    assert!(median <= 256, "median {median}");
    assert!(p95 <= 512, "p95 {p95}");
    assert!(max <= 832, "max {max}");
}

#[test]
fn ddio_uses_ten_percent_of_llc() {
    // §5.1.2 footnote: 2 of 20 ways = 10 %.
    let c = MachineConfig::haswell_e5_2667_v3();
    assert_eq!(c.ddio_ways as f64 / c.llc_slice.ways as f64, 0.10);
}

#[test]
fn mica_zipf_parameters() {
    // Fig. 8 caption: skewed (0.99) keys in the range [0, 2^24).
    let g = trafficgen::ZipfGen::paper_kvs(1);
    assert_eq!(g.n(), 1 << 24);
    assert!((g.theta() - 0.99).abs() < 1e-12);
}
