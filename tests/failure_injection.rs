//! Failure-injection integration tests: resource exhaustion and
//! degenerate configurations must degrade gracefully, never corrupt
//! accounting.

use engine::Execution;
use nfv::runtime::{run_experiment, ChainSpec, HeadroomMode, RunConfig, SteeringKind};
use rte::fault::FaultPlan;
use trafficgen::{ArrivalSchedule, CampusTrace, FlowTuple};

#[test]
fn starved_mbuf_pool_drops_but_conserves() {
    // Fewer mbufs than one queue's depth: the driver can never fully
    // stock the ring; excess traffic drops at the NIC.
    let cfg = RunConfig {
        cores: 2,
        steering: SteeringKind::Rss,
        chain: ChainSpec::MacSwap,
        headroom: HeadroomMode::Stock,
        queue_depth: 256,
        burst: 32,
        mbufs: 64,
        framework_cycles: 500,
        loopback_ns: 0.0,
        nic_rate_mpps: None,
        seed: 1,
        faults: FaultPlan::none(),
        execution: Execution::Serial,
        scheduler: engine::Scheduler::default(),
    };
    let mut trace = CampusTrace::fixed_size(64, 64, 1);
    let mut sched = ArrivalSchedule::constant_pps(20_000_000.0);
    let res = run_experiment(cfg, &mut trace, &mut sched, 10_000).expect("config fits");
    assert!(res.dropped > 0, "starvation must drop");
    assert_eq!(res.delivered + res.dropped, res.offered);
    assert!(res.delivered > 0, "the pipeline must still make progress");
}

#[test]
fn single_core_single_descriptor() {
    // The most degenerate queue geometry that is still legal.
    let cfg = RunConfig {
        cores: 1,
        steering: SteeringKind::Rss,
        chain: ChainSpec::MacSwap,
        headroom: HeadroomMode::Stock,
        queue_depth: 1,
        burst: 1,
        mbufs: 4,
        framework_cycles: 100,
        loopback_ns: 0.0,
        nic_rate_mpps: None,
        seed: 2,
        faults: FaultPlan::none(),
        execution: Execution::Serial,
        scheduler: engine::Scheduler::default(),
    };
    let mut trace = CampusTrace::fixed_size(64, 4, 2);
    let mut sched = ArrivalSchedule::constant_pps(1000.0);
    let res = run_experiment(cfg, &mut trace, &mut sched, 100).expect("config fits");
    // At 1 kpps a single descriptor is re-posted long before the next
    // arrival: everything goes through.
    assert_eq!(res.delivered, 100);
}

#[test]
fn napt_table_exhaustion_drops_cleanly() {
    use llc_sim::machine::{Machine, MachineConfig};
    use nfv::element::{Action, Ctx, Element, Pkt};
    use nfv::elements::Napt;
    use nfv::packet::encode_frame;

    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(64 << 20));
    // A 64-bucket table with more flows than it can hold.
    let mut napt = Napt::new(&mut m, 64).unwrap();
    let region = m.mem_mut().alloc(4096, 4096).unwrap();
    let mut forwarded = 0;
    let mut dropped = 0;
    for i in 0..200u32 {
        let flow = FlowTuple::tcp(i, 1000, 0xc0a80001, 80);
        let mut buf = vec![0u8; 64];
        encode_frame(&mut buf, &flow, 64, 0.0, 0);
        m.mem_mut().write(region.pa(0), &buf);
        let mut pkt = Pkt {
            mbuf: 0,
            data_pa: region.pa(0),
            len: 64,
            mark: None,
            flow: None,
        };
        let mut ctx = Ctx { m: &mut m, core: 0 };
        match napt.process(&mut ctx, &mut pkt).0 {
            Action::Forward => forwarded += 1,
            Action::Drop(_) => dropped += 1,
        }
    }
    assert!(dropped > 0, "an overfull table must shed flows");
    assert!(forwarded >= 40, "existing translations keep working");
    assert_eq!(napt.stats().exhausted, dropped);
    assert_eq!(forwarded + dropped, 200);
}

#[test]
fn zero_route_table_drops_everything() {
    let cfg = RunConfig {
        cores: 1,
        steering: SteeringKind::Rss,
        chain: ChainSpec::RouterNaptLb {
            routes: 1, // One /1 route: half the space resolves.
            offload: false,
        },
        headroom: HeadroomMode::Stock,
        queue_depth: 64,
        burst: 16,
        mbufs: 256,
        framework_cycles: 100,
        loopback_ns: 0.0,
        nic_rate_mpps: None,
        seed: 3,
        faults: FaultPlan::none(),
        execution: Execution::Serial,
        scheduler: engine::Scheduler::default(),
    };
    let mut trace = CampusTrace::fixed_size(64, 32, 3);
    let mut sched = ArrivalSchedule::constant_pps(10_000.0);
    let res = run_experiment(cfg, &mut trace, &mut sched, 500).expect("config fits");
    // The synthetic trace's servers sit in 192.168/16 (high half):
    // a single low-half /1 cannot route them, so the router drops all —
    // and every buffer is recycled (no leak: delivered+dropped=offered).
    assert_eq!(res.delivered, 0);
    assert_eq!(res.dropped, 500);
}

#[test]
fn vxlan_chain_places_inner_header_window() {
    // End-to-end §4.2 configurable-window check across crates: a
    // CacheDirector installed with window_offset = 64 places the line
    // holding the decapsulated inner header.
    use cache_director::{CacheDirector, CACHEDIRECTOR_HEADROOM};
    use llc_sim::machine::{Machine, MachineConfig};
    use nfv::element::Element;
    use nfv::elements::{encapsulate, VxlanDecap, VXLAN_OVERHEAD};
    use rte::mempool::MbufPool;
    use rte::nic::Port;
    use rte::steering::{Rss, Steering};

    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(128 << 20));
    let mut pool = MbufPool::create(&mut m, 128, CACHEDIRECTOR_HEADROOM, 2048).unwrap();
    let mut cd = CacheDirector::install(&mut m, &pool, 1, 64);
    let mut port = Port::new(0, Steering::Rss(Rss::new(1)), 64);
    port.refill(&mut m, &mut pool, 0, 0, &mut cd, 32);
    let outer = FlowTuple::udp(0x0a000001, 5555, 0x0a000002, 4789);
    let inner_flow = FlowTuple::tcp(0xc0a80001, 80, 0xc0a80002, 443);
    let mut inner = vec![0u8; 128];
    nfv::packet::encode_frame(&mut inner, &inner_flow, 128, 0.0, 0);
    let frame = encapsulate(&outer, 99, &inner);
    port.deliver(&mut m, &frame, &outer, 0.0).unwrap();
    let (batch, _) = port.rx_burst(&mut m, &pool, 0, 0, 4);
    let comp = batch[0];
    // The *second* line of the frame (the placed window) is in core 0's
    // closest slice...
    assert_eq!(m.slice_of(comp.data_pa.add(64)), m.closest_slice(0));
    // ...and after decap the inner header lives within that line.
    let mut decap = VxlanDecap::new();
    let mut pkt = nfv::element::Pkt::from_completion(&comp);
    let mut ctx = nfv::element::Ctx { m: &mut m, core: 0 };
    let (action, _) = decap.process(&mut ctx, &mut pkt);
    assert_eq!(action, nfv::element::Action::Forward);
    assert_eq!(pkt.data_pa, comp.data_pa.add(VXLAN_OVERHEAD as u64));
    let inner_hdr_line = pkt.data_pa.add(14); // Inner IPv4 header byte.
    assert_eq!(
        m.slice_of(inner_hdr_line.line_base()),
        m.closest_slice(0),
        "the decapped inner header must sit in the placed window"
    );
}

#[test]
fn every_injected_fault_kind_degrades_gracefully() {
    // One plan arming all five fault kinds at once, driven through the
    // full cross-crate testbed. Each kind must surface in its own
    // counter, and the per-cause counters must partition the loss:
    // offered == delivered + sum(dropped[cause]). The per-kind detail
    // tests live in crates/nfv/tests/failure_injection.rs.
    use rte::fault::Window;
    let mut cfg = RunConfig::paper_defaults(
        ChainSpec::RouterNaptLb {
            routes: 64,
            offload: false,
        },
        SteeringKind::Rss,
        HeadroomMode::CacheDirector {
            preferred_slices: 1,
        },
    );
    cfg.cores = 2;
    cfg.queue_depth = 128;
    cfg.mbufs = 512;
    cfg.faults = FaultPlan::frame_indexed()
        .with_seed(7)
        .with_corrupt_prob(0.05)
        .with_truncate_prob(0.10)
        .with_pool_exhaustion(Window::new(500, 800))
        .with_rx_stall(Window::new(1200, 1300))
        .with_link_flap(Window::new(1700, 1850));
    let mut trace = CampusTrace::fixed_size(128, 256, 13);
    let mut sched = ArrivalSchedule::constant_pps(2_000_000.0);
    let res = run_experiment(cfg, &mut trace, &mut sched, 4000).expect("config fits");
    assert_eq!(res.offered, res.delivered + res.dropped, "conservation");
    assert_eq!(res.drops.total(), res.dropped, "causes partition the loss");
    assert!(res.drops.nic.crc > 0, "corruption: {}", res.drops);
    assert!(
        res.drops.parse > 0,
        "truncation reaches the parser: {}",
        res.drops
    );
    assert!(res.drops.nic.pool_starved > 0, "pool outage: {}", res.drops);
    assert_eq!(
        res.drops.nic.rx_stall, 100,
        "stall loses its span: {}",
        res.drops
    );
    assert_eq!(
        res.drops.nic.link_down, 150,
        "flap loses its span: {}",
        res.drops
    );
    assert!(
        res.delivered > res.offered / 2,
        "the testbed keeps making progress ({} of {})",
        res.delivered,
        res.offered
    );
}
