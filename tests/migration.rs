//! Properties of the §8 hot-set migration loop, above the unit level:
//!
//! 1. **Ledger exactness** — in a multi-queue migrated run, the
//!    per-queue `migrated` / `migration_cycles` / `hot_hits` columns sum
//!    *exactly* to the aggregate (they are a partition, not an
//!    estimate), alongside the packet-conservation identity.
//! 2. **Convergence** — under a stationary Zipf workload the per-epoch
//!    hot-hit rate is monotonically non-decreasing: each migration can
//!    only improve (or preserve) the hot set's fit. Parameters are
//!    deterministic and tuned so sampling noise cannot fake a dip.

use engine::Execution;
use kvs::proto::RequestGen;
use kvs::server::{flow_for_queue, run_server, ServerConfig, ServerReport};
use kvs::store::{KvStore, Placement};
use kvs::HotMigrator;
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port};
use rte::steering::{Rss, Steering};
use slice_aware::alloc::SliceAllocator;
use trafficgen::ZipfGen;

/// A 4-core StripedHot server run with migration, scrambled Zipf keys.
fn migrated_run(execution: Execution) -> ServerReport {
    let cores = 4;
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
    let region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let slices: Vec<usize> = (0..cores).map(|c| m.closest_slice(c)).collect();
    let store = KvStore::build(
        &mut m,
        &mut alloc,
        4096,
        Placement::StripedHot {
            slices,
            hot_per_core: 64,
        },
    )
    .unwrap();
    let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
    let mut port = Port::new(0, Steering::Rss(Rss::new(cores)), 256);
    let base = trafficgen::FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
    let mut gens: Vec<RequestGen> = (0..cores)
        .map(|q| {
            let flow = flow_for_queue(&mut port, base, q);
            let keygen = ZipfGen::new(4096 / cores as u64, 0.99, 11 + q as u64);
            RequestGen::new(keygen, 900, 7 + q as u64)
                .with_flow(flow)
                .with_key_partition(cores as u32, q as u32)
                .with_key_scramble(41 + q as u64)
        })
        .collect();
    let mut policy = FixedHeadroom(128);
    let cfg = ServerConfig::fig8(10_000, 900, 1)
        .with_cores(cores)
        .with_execution(execution)
        .with_migration(800);
    run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &cfg,
    )
}

#[test]
fn migration_ledger_sums_exactly_across_queues() {
    for execution in [Execution::Serial, Execution::Parallel { threads: 4 }] {
        let rep = migrated_run(execution);
        assert!(rep.migrated > 0, "{execution:?}: the run must migrate");
        assert!(rep.migration_cycles > 0, "{execution:?}: swaps are timed");
        assert!(rep.hot_hits > 0, "{execution:?}: hits must register");
        let (mut mig, mut cyc, mut hits) = (0u64, 0u64, 0u64);
        for qr in &rep.per_queue {
            assert!(
                qr.migrated > 0,
                "{execution:?}: queue {} never migrated",
                qr.queue
            );
            assert!(
                qr.migration_cycles <= qr.busy_cycles,
                "{execution:?}: queue {} migration outside busy time",
                qr.queue
            );
            assert_eq!(
                qr.offered + qr.carried,
                qr.served + qr.drops.total() + qr.in_flight,
                "{execution:?}: queue {} conservation",
                qr.queue
            );
            mig += qr.migrated;
            cyc += qr.migration_cycles;
            hits += qr.hot_hits;
        }
        assert_eq!(
            mig, rep.migrated,
            "{execution:?}: migrated must sum exactly"
        );
        assert_eq!(
            cyc, rep.migration_cycles,
            "{execution:?}: migration_cycles must sum exactly"
        );
        assert_eq!(
            hits, rep.hot_hits,
            "{execution:?}: hot_hits must sum exactly"
        );
    }
}

#[test]
fn hot_hit_rate_is_monotone_across_epochs_under_stationary_zipf() {
    // Standalone migrator loop (no server): one core, HotSliceAware hot
    // area of 256 slots over 4096 keys, scrambled Zipf(0.99) accesses.
    // Epochs of 4096 accesses are long enough that the per-epoch hit
    // rate of a stationary workload is dominated by the resident set,
    // not sampling noise.
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
    let region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let slice = m.closest_slice(0);
    let store = KvStore::build(
        &mut m,
        &mut alloc,
        4096,
        Placement::HotSliceAware {
            slice,
            hot_count: 256,
        },
    )
    .unwrap();
    let epoch = 4096;
    let mut mig = HotMigrator::for_store(&m, &store, 0, epoch).unwrap();
    let mut gen = RequestGen::new(ZipfGen::new(4096, 0.99, 51), 1000, 52).with_key_scramble(53);
    let mut rates = Vec::new();
    let mut cumulative = Vec::new();
    let (mut hits, mut accesses) = (0u64, 0u64);
    while rates.len() < 6 {
        if let Some(rep) = mig.record(&mut m, &store, gen.next_request().key).unwrap() {
            assert_eq!(rep.accesses, epoch as u64);
            hits += rep.hot_hits;
            accesses += rep.accesses;
            rates.push(rep.hot_hits as f64 / rep.accesses as f64);
            cumulative.push(hits as f64 / accesses as f64);
        }
    }
    // The hit rate observed over the run so far never decreases at an
    // epoch boundary: migration converges toward the stationary hot set
    // from below. (The *per-epoch* rate plateaus with ~1 pt sampling
    // wobble once converged, so the monotone statement is on the
    // cumulative rate; the plateau floor is asserted separately below.)
    for w in cumulative.windows(2) {
        assert!(
            w[1] >= w[0],
            "cumulative hot-hit rate regressed across an epoch: {cumulative:?}"
        );
    }
    // Every post-migration epoch stays far above the cold first epoch:
    // the plateau never slides back toward the unmigrated layout.
    for (i, r) in rates.iter().enumerate().skip(1) {
        assert!(
            *r > rates[0] + 0.2,
            "epoch {i} regressed toward the cold layout: {rates:?}"
        );
    }
}
