//! Properties of the §8 hot-set migration loop, above the unit level:
//!
//! 1. **Ledger exactness** — in a multi-queue migrated run, the
//!    per-queue `migrated` / `migration_cycles` / `hot_hits` columns sum
//!    *exactly* to the aggregate (they are a partition, not an
//!    estimate), alongside the packet-conservation identity. The
//!    cost-aware controller's veto/defer/at-loss columns partition the
//!    same way, and its at-loss column is structurally zero.
//! 2. **Convergence** — under a stationary Zipf workload the per-epoch
//!    hot-hit rate is monotonically non-decreasing: each migration can
//!    only improve (or preserve) the hot set's fit. Parameters are
//!    deterministic and tuned so sampling noise cannot fake a dip.
//! 3. **Churn tracking** — when the hot set shifts mid-run, the
//!    cost-aware controller re-converges: the hit rate dips at the
//!    shift and recovers to its pre-shift plateau.
//! 4. **Economics on TPS** — on a churning workload, the cost-aware
//!    controller beats *both* the static StripedHot layout (it captures
//!    the profitable head) and the always-migrate policy (it refuses
//!    the unprofitable tail) on transactions per second.

use engine::Execution;
use kvs::proto::RequestGen;
use kvs::server::{flow_for_queue, run_server, MigrationMode, ServerConfig, ServerReport};
use kvs::store::{KvStore, Placement};
use kvs::{CostModel, HotMigrator, MigrationPolicy};
use llc_sim::hash::{SliceHash, XorSliceHash};
use llc_sim::machine::{Machine, MachineConfig};
use rte::mempool::MbufPool;
use rte::nic::{FixedHeadroom, Port};
use rte::steering::{Rss, Steering};
use slice_aware::alloc::SliceAllocator;
use trafficgen::{PhaseGen, PhaseSchedule, ZipfGen};

/// A 4-core StripedHot server run with migration, scrambled Zipf keys.
fn migrated_run(execution: Execution) -> ServerReport {
    migrated_run_with(execution, MigrationMode::Always { epoch: 800 }, 10_000)
}

/// [`migrated_run`] parameterized over migration mode and load.
fn migrated_run_with(
    execution: Execution,
    migration: MigrationMode,
    requests: usize,
) -> ServerReport {
    let cores = 4;
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
    let region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let slices: Vec<usize> = (0..cores).map(|c| m.closest_slice(c)).collect();
    let store = KvStore::build(
        &mut m,
        &mut alloc,
        4096,
        Placement::StripedHot {
            slices,
            hot_per_core: 64,
        },
    )
    .unwrap();
    let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
    let mut port = Port::new(0, Steering::Rss(Rss::new(cores)), 256);
    let base = trafficgen::FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
    let mut gens: Vec<RequestGen> = (0..cores)
        .map(|q| {
            let flow = flow_for_queue(&mut port, base, q);
            let keygen = ZipfGen::new(4096 / cores as u64, 0.99, 11 + q as u64);
            RequestGen::new(keygen, 900, 7 + q as u64)
                .with_flow(flow)
                .with_key_partition(cores as u32, q as u32)
                .with_key_scramble(41 + q as u64)
        })
        .collect();
    let mut policy = FixedHeadroom(128);
    let mut cfg = ServerConfig::fig8(requests, 900, 1)
        .with_cores(cores)
        .with_execution(execution);
    cfg.migration = migration;
    run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &cfg,
    )
}

#[test]
fn migration_ledger_sums_exactly_across_queues() {
    for execution in [Execution::Serial, Execution::Parallel { threads: 4 }] {
        let rep = migrated_run(execution);
        assert!(rep.migrated > 0, "{execution:?}: the run must migrate");
        assert!(rep.migration_cycles > 0, "{execution:?}: swaps are timed");
        assert!(rep.hot_hits > 0, "{execution:?}: hits must register");
        let (mut mig, mut cyc, mut hits) = (0u64, 0u64, 0u64);
        for qr in &rep.per_queue {
            assert!(
                qr.migrated > 0,
                "{execution:?}: queue {} never migrated",
                qr.queue
            );
            assert!(
                qr.migration_cycles <= qr.busy_cycles,
                "{execution:?}: queue {} migration outside busy time",
                qr.queue
            );
            assert_eq!(
                qr.offered + qr.carried,
                qr.served + qr.drops.total() + qr.in_flight,
                "{execution:?}: queue {} conservation",
                qr.queue
            );
            mig += qr.migrated;
            cyc += qr.migration_cycles;
            hits += qr.hot_hits;
        }
        assert_eq!(
            mig, rep.migrated,
            "{execution:?}: migrated must sum exactly"
        );
        assert_eq!(
            cyc, rep.migration_cycles,
            "{execution:?}: migration_cycles must sum exactly"
        );
        assert_eq!(
            hits, rep.hot_hits,
            "{execution:?}: hot_hits must sum exactly"
        );
    }
}

#[test]
fn cost_aware_ledger_partitions_and_never_swaps_at_a_loss() {
    for execution in [Execution::Serial, Execution::Parallel { threads: 4 }] {
        let rep = migrated_run_with(execution, MigrationMode::CostAware { epoch: 1000 }, 12_000);
        assert!(rep.migrated > 0, "{execution:?}: the head must migrate");
        assert!(
            rep.swaps_vetoed > 0,
            "{execution:?}: the Zipf tail must be vetoed"
        );
        assert_eq!(
            rep.swaps_at_loss, 0,
            "{execution:?}: cost-aware never executes at a projected loss"
        );
        let (mut mig, mut cyc, mut hits) = (0u64, 0u64, 0u64);
        let (mut vet, mut def, mut loss) = (0u64, 0u64, 0u64);
        for qr in &rep.per_queue {
            assert_eq!(
                qr.offered + qr.carried,
                qr.served + qr.drops.total() + qr.in_flight,
                "{execution:?}: queue {} conservation",
                qr.queue
            );
            mig += qr.migrated;
            cyc += qr.migration_cycles;
            hits += qr.hot_hits;
            vet += qr.swaps_vetoed;
            def += qr.swaps_deferred;
            loss += qr.swaps_at_loss;
        }
        assert_eq!(mig, rep.migrated, "{execution:?}: migrated partition");
        assert_eq!(
            cyc, rep.migration_cycles,
            "{execution:?}: migration_cycles partition"
        );
        assert_eq!(hits, rep.hot_hits, "{execution:?}: hot_hits partition");
        assert_eq!(vet, rep.swaps_vetoed, "{execution:?}: vetoed partition");
        assert_eq!(def, rep.swaps_deferred, "{execution:?}: deferred partition");
        assert_eq!(loss, rep.swaps_at_loss, "{execution:?}: at-loss partition");
    }
}

#[test]
fn cost_aware_controller_reconverges_after_a_hot_set_shift() {
    // Standalone migrator loop, one core, hot area of 256 slots over
    // 4096 keys. The workload is two phases of scrambled Zipf(0.99):
    // the second rotates the rank→key mapping so the profitable head
    // becomes a disjoint key set. The controller must (a) converge in
    // phase 1, (b) dip when the hot set shifts, and (c) recover to its
    // pre-shift plateau — waking from dormancy if it backed off during
    // the stationary stretch.
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
    let region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let slice = m.closest_slice(0);
    let store = KvStore::build(
        &mut m,
        &mut alloc,
        4096,
        Placement::HotSliceAware {
            slice,
            hot_count: 256,
        },
    )
    .unwrap();
    let phase_len = 32_768usize;
    let keygen = PhaseGen::new(
        ZipfGen::new(4096, 0.99, 51),
        PhaseSchedule::hot_set_churn(2, phase_len as u64, 1_777),
        55,
    );
    let mut gen = RequestGen::phased(keygen, 1000, 52).with_key_scramble(53);
    // Pin the tuner's epoch floor at the chosen epoch: this test
    // isolates churn *tracking*. Left free, the tuner trades capture
    // depth for tracking latency by shortening rich epochs (per-epoch
    // counts shrink with the epoch, so fewer keys clear the veto) —
    // that trade is exercised by the unit suite, not here.
    let model = CostModel::measure(&m, 0).with_epoch_bounds(4096, 1 << 20);
    let mut mig = HotMigrator::for_store(&m, &store, 0, 4096)
        .unwrap()
        .with_policy(MigrationPolicy::CostAware(model));
    // Windowed hit rates are measured on fixed 4096-access windows,
    // decoupled from the controller's (self-tuning) epoch length.
    let window = 4_096usize;
    let total = 2 * phase_len;
    let mut hits = vec![0u64; total / window];
    for i in 0..total {
        let key = gen.next_request().key;
        hits[i / window] += u64::from(mig.note(key));
        if mig.epoch_due() {
            mig.run_epoch(&mut m, &store).unwrap();
        }
    }
    let rates: Vec<f64> = hits.iter().map(|&h| h as f64 / window as f64).collect();
    let per_phase = phase_len / window;
    let cold = rates[0];
    let plateau = rates[per_phase - 1];
    let dip = rates[per_phase];
    let recovered = rates[total / window - 1];
    assert!(plateau > cold + 0.1, "phase 1 never converged: {rates:?}");
    assert!(
        dip < plateau - 0.1,
        "the shift must visibly dent the hit rate: {rates:?}"
    );
    assert!(
        recovered > dip + 0.1,
        "the controller never re-converged after the shift: {rates:?}"
    );
    assert!(
        recovered > plateau - 0.05,
        "phase 2 plateau fell short of phase 1's: {rates:?}"
    );
}

/// A 4-core StripedHot server under hot-set churn: each client's
/// rank→key mapping rotates every 6 000 draws, so yesterday's hot keys
/// go cold and a disjoint head takes over — three times per run.
fn churn_run(migration: MigrationMode) -> ServerReport {
    let cores = 4;
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
    let region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let slices: Vec<usize> = (0..cores).map(|c| m.closest_slice(c)).collect();
    let store = KvStore::build(
        &mut m,
        &mut alloc,
        4096,
        Placement::StripedHot {
            slices,
            hot_per_core: 64,
        },
    )
    .unwrap();
    let mut pool = MbufPool::create(&mut m, 4096, 128, 2048).unwrap();
    let mut port = Port::new(0, Steering::Rss(Rss::new(cores)), 256);
    let base = trafficgen::FlowTuple::tcp(0x0a00_0001, 40_000, 0xc0a8_0001, 11211);
    let mut gens: Vec<RequestGen> = (0..cores)
        .map(|q| {
            let flow = flow_for_queue(&mut port, base, q);
            let keygen = PhaseGen::new(
                ZipfGen::new(4096 / cores as u64, 0.99, 11 + q as u64),
                PhaseSchedule::hot_set_churn(3, 6_000, 211),
                71 + q as u64,
            );
            RequestGen::phased(keygen, 900, 7 + q as u64)
                .with_flow(flow)
                .with_key_partition(cores as u32, q as u32)
                .with_key_scramble(41 + q as u64)
        })
        .collect();
    let mut policy = FixedHeadroom(128);
    let mut cfg = ServerConfig::fig8(72_000, 900, 1)
        .with_cores(cores)
        .with_execution(Execution::Serial);
    cfg.migration = migration;
    run_server(
        &mut m,
        &store,
        &mut pool,
        &mut port,
        &mut policy,
        &mut gens,
        &cfg,
    )
}

#[test]
fn cost_aware_beats_static_and_always_migrate_on_churn_tps() {
    let fixed = churn_run(MigrationMode::Off);
    let always = churn_run(MigrationMode::Always { epoch: 1000 });
    let aware = churn_run(MigrationMode::CostAware { epoch: 1000 });
    assert!(aware.migrated > 0, "cost-aware must track the churn");
    assert_eq!(
        aware.swaps_at_loss, 0,
        "cost-aware never executes at a projected loss"
    );
    assert!(
        always.migrated > aware.migrated,
        "always-migrate must be paying for swaps the economics refuse \
         (always {} vs aware {})",
        always.migrated,
        aware.migrated
    );
    // The acceptance inequality (ISSUE 8): under churn the cost-aware
    // controller strictly beats the static layout (it captures the
    // profitable head each phase) *and* the always-migrate policy (it
    // refuses the unprofitable tail). All three runs are deterministic,
    // so strict inequalities are meaningful.
    assert!(
        aware.tps > fixed.tps,
        "cost-aware must beat static StripedHot: {} vs {}",
        aware.tps,
        fixed.tps
    );
    assert!(
        aware.tps > always.tps,
        "cost-aware must beat always-migrate: {} vs {}",
        aware.tps,
        always.tps
    );
}

#[test]
fn hot_hit_rate_is_monotone_across_epochs_under_stationary_zipf() {
    // Standalone migrator loop (no server): one core, HotSliceAware hot
    // area of 256 slots over 4096 keys, scrambled Zipf(0.99) accesses.
    // Epochs of 4096 accesses are long enough that the per-epoch hit
    // rate of a stationary workload is dominated by the resident set,
    // not sampling noise.
    let mut m = Machine::new(MachineConfig::haswell_e5_2667_v3().with_dram_capacity(512 << 20));
    let region = m.mem_mut().alloc(32 << 20, 1 << 20).unwrap();
    let h = XorSliceHash::haswell_8slice();
    let mut alloc = SliceAllocator::new(region, move |pa| h.slice_of(pa));
    let slice = m.closest_slice(0);
    let store = KvStore::build(
        &mut m,
        &mut alloc,
        4096,
        Placement::HotSliceAware {
            slice,
            hot_count: 256,
        },
    )
    .unwrap();
    let epoch = 4096;
    let mut mig = HotMigrator::for_store(&m, &store, 0, epoch).unwrap();
    let mut gen = RequestGen::new(ZipfGen::new(4096, 0.99, 51), 1000, 52).with_key_scramble(53);
    let mut rates = Vec::new();
    let mut cumulative = Vec::new();
    let (mut hits, mut accesses) = (0u64, 0u64);
    while rates.len() < 6 {
        if let Some(rep) = mig.record(&mut m, &store, gen.next_request().key).unwrap() {
            assert_eq!(rep.accesses, epoch as u64);
            hits += rep.hot_hits;
            accesses += rep.accesses;
            rates.push(rep.hot_hits as f64 / rep.accesses as f64);
            cumulative.push(hits as f64 / accesses as f64);
        }
    }
    // The hit rate observed over the run so far never decreases at an
    // epoch boundary: migration converges toward the stationary hot set
    // from below. (The *per-epoch* rate plateaus with ~1 pt sampling
    // wobble once converged, so the monotone statement is on the
    // cumulative rate; the plateau floor is asserted separately below.)
    for w in cumulative.windows(2) {
        assert!(
            w[1] >= w[0],
            "cumulative hot-hit rate regressed across an epoch: {cumulative:?}"
        );
    }
    // Every post-migration epoch stays far above the cold first epoch:
    // the plateau never slides back toward the unmigrated layout.
    for (i, r) in rates.iter().enumerate().skip(1) {
        assert!(
            *r > rates[0] + 0.2,
            "epoch {i} regressed toward the cold layout: {rates:?}"
        );
    }
}
