//! End-to-end integration tests spanning every crate: the full
//! LoadGen → NIC → CacheDirector → service-chain pipeline, at test scale.

use nfv::runtime::{run_experiment, ChainSpec, HeadroomMode, RunConfig, SteeringKind};
use trafficgen::{ArrivalSchedule, CampusTrace, SizeMix};

fn cfg(
    chain: ChainSpec,
    steering: SteeringKind,
    headroom: HeadroomMode,
    cores: usize,
) -> RunConfig {
    let mut c = RunConfig::paper_defaults(chain, steering, headroom);
    c.cores = cores;
    c.queue_depth = 256;
    c.mbufs = 4096;
    c
}

#[test]
fn forwarding_pipeline_conserves_packets() {
    let c = cfg(
        ChainSpec::MacSwap,
        SteeringKind::Rss,
        HeadroomMode::Stock,
        4,
    );
    let mut trace = CampusTrace::new(SizeMix::campus(), 256, 1);
    let mut sched = ArrivalSchedule::constant_pps(500_000.0);
    let res = run_experiment(c, &mut trace, &mut sched, 5_000).expect("config fits");
    assert_eq!(res.offered, 5_000);
    assert_eq!(res.delivered + res.dropped, 5_000);
    assert_eq!(res.latencies_ns.len() as u64, res.delivered);
    assert!(res.latencies_ns.iter().all(|&l| l > 0.0));
}

#[test]
fn stateful_chain_full_stack() {
    let c = cfg(
        ChainSpec::RouterNaptLb {
            routes: 512,
            offload: true,
        },
        SteeringKind::FlowDirector,
        HeadroomMode::CacheDirector {
            preferred_slices: 1,
        },
        4,
    );
    let mut trace = CampusTrace::new(SizeMix::campus(), 512, 2);
    let mut sched = ArrivalSchedule::constant_pps(1_000_000.0);
    let res = run_experiment(c, &mut trace, &mut sched, 8_000).expect("config fits");
    // Catch-all routes: every offered packet is either delivered or
    // dropped at the NIC, never lost.
    assert_eq!(res.delivered + res.dropped, res.offered);
    assert!(res.delivered > 7_000, "most packets forward");
    assert!(res.achieved_gbps > 0.0);
}

#[test]
fn cachedirector_never_hurts_at_low_rate() {
    let run = |headroom| {
        let c = cfg(ChainSpec::MacSwap, SteeringKind::Rss, headroom, 2);
        let mut trace = CampusTrace::fixed_size(64, 64, 3);
        let mut sched = ArrivalSchedule::constant_pps(1000.0);
        run_experiment(c, &mut trace, &mut sched, 1_000)
            .expect("config fits")
            .summary()
            .unwrap()
            .mean()
    };
    let stock = run(HeadroomMode::Stock);
    let cd = run(HeadroomMode::CacheDirector {
        preferred_slices: 1,
    });
    assert!(
        cd <= stock + 1.0,
        "CacheDirector mean {cd} vs stock {stock}"
    );
}

#[test]
fn cachedirector_cuts_tails_under_load() {
    // The paper's headline at integration-test scale: an overloaded
    // 2-core DuT, Zipf flows, p99 must improve with CacheDirector.
    let run = |headroom| {
        let mut c = cfg(ChainSpec::MacSwap, SteeringKind::Rss, headroom, 2);
        c.nic_rate_mpps = Some(4.0);
        let mut trace = CampusTrace::fixed_size(128, 256, 5);
        let mut sched = ArrivalSchedule::constant_pps(5_000_000.0);
        run_experiment(c, &mut trace, &mut sched, 30_000)
            .expect("config fits")
            .summary()
            .unwrap()
            .percentile(99.0)
    };
    let stock = run(HeadroomMode::Stock);
    let cd = run(HeadroomMode::CacheDirector {
        preferred_slices: 1,
    });
    assert!(cd < stock, "p99: CacheDirector {cd} vs stock {stock}");
}

#[test]
fn rates_and_duration_are_consistent() {
    let c = cfg(
        ChainSpec::MacSwap,
        SteeringKind::Rss,
        HeadroomMode::Stock,
        2,
    );
    let mut trace = CampusTrace::fixed_size(512, 32, 9);
    let mut sched = ArrivalSchedule::constant_gbps(10.0, 512.0);
    let res = run_experiment(c, &mut trace, &mut sched, 5_000).expect("config fits");
    assert!(
        (res.offered_gbps - 10.0).abs() < 0.5,
        "offered {}",
        res.offered_gbps
    );
    assert!(res.achieved_gbps <= res.offered_gbps + 0.5);
    assert!(res.duration_ns > 0.0);
}

#[test]
fn skylake_machine_runs_the_same_pipeline() {
    use llc_sim::machine::{Machine, MachineConfig};
    use nfv::runtime::Testbed;
    let c = cfg(
        ChainSpec::MacSwap,
        SteeringKind::Rss,
        HeadroomMode::CacheDirector {
            preferred_slices: 3,
        },
        4,
    );
    let m = Machine::new(MachineConfig::skylake_gold_6134());
    let mut tb = Testbed::on_machine(c, m).expect("config fits");
    let mut trace = CampusTrace::fixed_size(256, 64, 11);
    let mut sched = ArrivalSchedule::constant_pps(100_000.0);
    for _ in 0..2_000 {
        let t = sched.next_arrival_ns();
        let spec = trace.next_packet();
        tb.offer(&spec.flow, spec.size, t);
    }
    let res = tb.finish();
    assert_eq!(res.delivered + res.dropped, res.offered);
    assert!(res.delivered > 1_900);
}

#[test]
fn cachedirector_tail_gain_is_seed_robust() {
    // The headline effect must not hinge on one lucky seed: across
    // independent seeds at a loaded operating point, CacheDirector's p99
    // never loses and wins on the majority.
    let run = |seed: u64, headroom| {
        let mut c = cfg(
            ChainSpec::RouterNaptLb {
                routes: 256,
                offload: true,
            },
            SteeringKind::FlowDirector,
            headroom,
            4,
        );
        c.seed = seed;
        c.nic_rate_mpps = Some(7.1);
        let mut trace = CampusTrace::new(SizeMix::campus(), 2048, seed);
        let mut sched = ArrivalSchedule::constant_gbps(50.0, 670.0);
        run_experiment(c, &mut trace, &mut sched, 25_000)
            .expect("config fits")
            .summary()
            .unwrap()
            .percentile(99.0)
    };
    let mut wins = 0;
    for seed in [11u64, 22, 33] {
        let stock = run(seed, HeadroomMode::Stock);
        let cd = run(
            seed,
            HeadroomMode::CacheDirector {
                preferred_slices: 1,
            },
        );
        assert!(
            cd <= stock * 1.02,
            "seed {seed}: CacheDirector p99 {cd} vs stock {stock}"
        );
        if cd < stock {
            wins += 1;
        }
    }
    assert!(
        wins >= 2,
        "CacheDirector should win on most seeds ({wins}/3)"
    );
}
